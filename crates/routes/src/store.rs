//! `RouteStore` — the authoritative route state, its compiled
//! [`RouteTables`], and the delta/rebuild machinery that connects them.
//!
//! The store owns the ground truth (ordered maps per family); the
//! compiled tables are immutable, `Arc`-shared views derived from it.
//! `commit` is the common path: apply a [`RouteDelta`] to the ground
//! truth, then derive the next table version copy-on-write, touching
//! only what changed. `rebuild` is the escape hatch (first build,
//! oversized delta) and is what `dip_routes_full_rebuilds_total`
//! counts — a healthy system commits deltas and almost never rebuilds.

use crate::delta::RouteDelta;
use crate::lpm::{mask_bits, CompressedLpm, PrefixStore};
use crate::name_fib::CompactNameFib;
use crate::xia_fib::CompactXia;
use dip_tables::fib::{Ipv4Fib, Ipv6Fib, NameFib, NextHop};
use dip_tables::{XiaNextHop, XiaRouteTable};
use dip_telemetry::{Counter, Histogram, Registry};
use dip_wire::ipv4::Ipv4Addr;
use dip_wire::ipv6::Ipv6Addr;
use dip_wire::ndn::Name;
use dip_wire::xia::{Xid, XidType};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Instant;

/// One immutable version of every protocol's compiled forwarding
/// table. `Clone` is a handful of `Arc` bumps — this is the value the
/// control plane ships inside a route snapshot and a worker installs
/// at an epoch boundary.
#[derive(Clone, Debug, Default)]
pub struct RouteTables {
    /// Compressed IPv4 LPM.
    pub v4: CompressedLpm,
    /// Compressed IPv6 LPM.
    pub v6: CompressedLpm,
    /// Hash-compacted NDN name FIB.
    pub names: CompactNameFib,
    /// Compacted XIA route table.
    pub xia: CompactXia,
    /// Monotone version, bumped by every commit/rebuild.
    pub version: u64,
}

impl RouteTables {
    /// IPv4 longest-prefix match.
    #[inline]
    pub fn lookup_v4(&self, addr: Ipv4Addr) -> Option<NextHop> {
        self.v4.lookup_bits(u128::from(addr.to_u32()) << 96)
    }

    /// IPv6 longest-prefix match.
    #[inline]
    pub fn lookup_v6(&self, addr: Ipv6Addr) -> Option<NextHop> {
        self.v6.lookup_bits(addr.to_u128())
    }

    /// NDN longest-name-prefix match.
    #[inline]
    pub fn lookup_name(&self, name: &Name) -> Option<NextHop> {
        self.names.lookup(name)
    }

    /// NDN exact match on a 32-bit compact name.
    #[inline]
    pub fn lookup_name_compact(&self, compact: u32) -> Option<NextHop> {
        self.names.lookup_compact(compact)
    }

    /// XIA per-principal lookup.
    #[inline]
    pub fn lookup_xia(&self, ty: XidType, xid: &Xid) -> Option<XiaNextHop> {
        self.xia.lookup(ty, xid)
    }

    /// Total routes across all families.
    pub fn route_count(&self) -> usize {
        self.v4.len() + self.v6.len() + self.names.len() + self.xia.len()
    }
}

/// Deterministic commit/rebuild counters (mirrored into telemetry when
/// a registry is attached; kept as plain integers so reports stay
/// reproducible without one).
#[derive(Clone, Copy, Debug, Default)]
pub struct StoreStats {
    /// Deltas committed.
    pub deltas_applied: u64,
    /// Individual route operations carried by those deltas.
    pub delta_routes: u64,
    /// Full table rebuilds (first build + oversized-delta fallbacks).
    pub full_rebuilds: u64,
    /// Epoch publications noted via [`RouteStore::note_epoch_swap`].
    pub epoch_swaps: u64,
}

/// The `dip_routes_*` telemetry family.
struct RoutesMetrics {
    delta_routes: Arc<Counter>,
    deltas_applied: Arc<Counter>,
    apply_ns: Arc<Histogram>,
    epoch_swaps: Arc<Counter>,
    full_rebuilds: Arc<Counter>,
}

/// Log-spaced bounds for the delta-apply latency histogram: 1 µs to
/// ~67 ms by powers of two.
fn apply_bounds() -> Vec<u64> {
    (0..17).map(|i| 1_000u64 << i).collect()
}

/// Authoritative, incrementally-updatable forwarding state for every
/// protocol, plus its current compiled [`RouteTables`].
#[derive(Default)]
pub struct RouteStore {
    v4: PrefixStore,
    v6: PrefixStore,
    names: BTreeMap<Vec<Vec<u8>>, NextHop>,
    xia_routes: BTreeMap<(u32, Xid), XiaNextHop>,
    xia_types: BTreeSet<u32>,
    tables: RouteTables,
    stats: StoreStats,
    metrics: Option<RoutesMetrics>,
}

impl std::fmt::Debug for RouteStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouteStore")
            .field("v4", &self.v4.len())
            .field("v6", &self.v6.len())
            .field("names", &self.names.len())
            .field("xia", &self.xia_routes.len())
            .field("version", &self.tables.version)
            .field("stats", &self.stats)
            .finish()
    }
}

impl RouteStore {
    /// An empty store with empty compiled tables at version 0.
    pub fn new() -> Self {
        RouteStore::default()
    }

    /// Registers the `dip_routes_*` family under `labels`: delta size
    /// and count counters, the wall-clock apply-latency histogram,
    /// epoch swaps, and full-rebuild fallbacks. Until called, only the
    /// deterministic [`StoreStats`] are kept.
    pub fn attach_metrics(&mut self, registry: &Registry, labels: &[(&str, &str)]) {
        self.metrics = Some(RoutesMetrics {
            delta_routes: registry.counter(
                "dip_routes_delta_routes_total",
                "Individual route operations carried by committed deltas",
                labels,
            ),
            deltas_applied: registry.counter(
                "dip_routes_deltas_applied_total",
                "Route deltas committed copy-on-write",
                labels,
            ),
            apply_ns: registry.histogram(
                "dip_routes_apply_ns",
                "Wall-clock nanoseconds to commit one route delta",
                labels,
                &apply_bounds(),
            ),
            epoch_swaps: registry.counter(
                "dip_routes_epoch_swaps_total",
                "Compiled tables published through an epoch cell",
                labels,
            ),
            full_rebuilds: registry.counter(
                "dip_routes_full_rebuilds_total",
                "Full table rebuilds (first build and oversized-delta fallbacks)",
                labels,
            ),
        });
    }

    /// Records that the current tables were published through an epoch
    /// cell (called by whoever performs the publish).
    pub fn note_epoch_swap(&mut self) {
        self.stats.epoch_swaps += 1;
        if let Some(m) = &self.metrics {
            m.epoch_swaps.inc();
        }
    }

    /// Inserts an IPv4 route into the ground truth (compile later via
    /// [`RouteStore::rebuild`] — seeding path).
    pub fn insert_v4(&mut self, addr: Ipv4Addr, len: u8, next_hop: NextHop) {
        self.v4.insert(u128::from(addr.to_u32()) << 96, len, next_hop);
    }

    /// Inserts an IPv6 route into the ground truth.
    pub fn insert_v6(&mut self, addr: Ipv6Addr, len: u8, next_hop: NextHop) {
        self.v6.insert(addr.to_u128(), len, next_hop);
    }

    /// Inserts an NDN name route into the ground truth.
    pub fn insert_name(&mut self, name: &Name, next_hop: NextHop) {
        self.names.insert(name.components().to_vec(), next_hop);
    }

    /// Inserts an XIA route into the ground truth (declares its type).
    pub fn insert_xia(&mut self, ty: XidType, xid: Xid, next_hop: XiaNextHop) {
        self.xia_types.insert(ty.to_wire());
        self.xia_routes.insert((ty.to_wire(), xid), next_hop);
    }

    /// Declares an XIA principal type understood even without routes.
    pub fn declare_xia_type(&mut self, ty: XidType) {
        self.xia_types.insert(ty.to_wire());
    }

    /// Imports every route of the legacy per-protocol tables — the
    /// bridge from [`dip_tables`]-seeded state (and the guarantee that
    /// compiled lookups agree with what that state would answer).
    pub fn import(&mut self, v4: &Ipv4Fib, v6: &Ipv6Fib, names: &NameFib, xia: &XiaRouteTable) {
        for (addr, len, nh) in v4.routes() {
            self.insert_v4(addr, len, nh);
        }
        for (addr, len, nh) in v6.routes() {
            self.insert_v6(addr, len, nh);
        }
        for (name, nh) in names.routes() {
            self.insert_name(&name, nh);
        }
        for ty in xia.types() {
            self.xia_types.insert(ty);
        }
        for (ty, xid, nh) in xia.routes() {
            self.xia_routes.insert((ty, xid), nh);
        }
    }

    /// Drops all ground truth (the compiled tables stay until the next
    /// rebuild/commit).
    pub fn clear(&mut self) {
        self.v4.clear();
        self.v6.clear();
        self.names.clear();
        self.xia_routes.clear();
        self.xia_types.clear();
    }

    /// Compiles every table from scratch. This is the counted fallback
    /// path: first build after seeding, or a delta so large that
    /// incremental application would touch most of the table anyway.
    pub fn rebuild(&mut self) -> RouteTables {
        let t0 = Instant::now();
        self.tables = RouteTables {
            v4: CompressedLpm::build_from(&self.v4),
            v6: CompressedLpm::build_from(&self.v6),
            names: CompactNameFib::build_from(&self.names),
            xia: CompactXia::build_from(&self.xia_routes, &self.xia_types),
            version: self.tables.version + 1,
        };
        self.stats.full_rebuilds += 1;
        if let Some(m) = &self.metrics {
            m.full_rebuilds.inc();
            m.apply_ns.observe(t0.elapsed().as_nanos() as u64);
        }
        self.tables.clone()
    }

    /// Commits a delta: applies it to the ground truth, then derives
    /// the next compiled version copy-on-write — only the touched LPM
    /// chunks / root-leaf ranges are rebuilt, and untouched families
    /// are shared with the previous version by `Arc`.
    pub fn commit(&mut self, delta: &RouteDelta) -> RouteTables {
        let t0 = Instant::now();

        let mut v4_slots = BTreeSet::new();
        let mut v4_shorts = Vec::new();
        for &(addr, len, action) in &delta.v4 {
            let bits = u128::from(addr.to_u32()) << 96;
            let changed = match action {
                Some(nh) => self.v4.insert(bits, len, nh),
                None => self.v4.remove(bits, len),
            };
            if changed {
                if len <= 16 {
                    v4_shorts.push((bits & mask_bits(len), len));
                } else {
                    v4_slots.insert((bits >> 112) as u16);
                }
            }
        }
        let mut v6_slots = BTreeSet::new();
        let mut v6_shorts = Vec::new();
        for &(addr, len, action) in &delta.v6 {
            let bits = addr.to_u128();
            let changed = match action {
                Some(nh) => self.v6.insert(bits, len, nh),
                None => self.v6.remove(bits, len),
            };
            if changed {
                if len <= 16 {
                    v6_shorts.push((bits & mask_bits(len), len));
                } else {
                    v6_slots.insert((bits >> 112) as u16);
                }
            }
        }
        for (name, action) in &delta.names {
            match action {
                Some(nh) => {
                    self.names.insert(name.components().to_vec(), *nh);
                }
                None => {
                    self.names.remove(name.components());
                }
            }
        }
        for &(ty, xid, action) in &delta.xia {
            match action {
                Some(nh) => {
                    self.xia_types.insert(ty.to_wire());
                    self.xia_routes.insert((ty.to_wire(), xid), nh);
                }
                None => {
                    self.xia_routes.remove(&(ty.to_wire(), xid));
                }
            }
        }

        let v4 = if v4_slots.is_empty() && v4_shorts.is_empty() {
            self.tables.v4.clone()
        } else {
            self.tables.v4.apply_delta(&self.v4, &v4_slots, &v4_shorts)
        };
        let v6 = if v6_slots.is_empty() && v6_shorts.is_empty() {
            self.tables.v6.clone()
        } else {
            self.tables.v6.apply_delta(&self.v6, &v6_slots, &v6_shorts)
        };
        let names = if delta.names.is_empty() {
            self.tables.names.clone()
        } else {
            self.tables.names.apply_delta(&delta.names, self.names.len())
        };
        let xia = if delta.xia.is_empty() {
            self.tables.xia.clone()
        } else {
            self.tables.xia.apply_delta(&delta.xia)
        };
        self.tables = RouteTables { v4, v6, names, xia, version: self.tables.version + 1 };

        self.stats.deltas_applied += 1;
        self.stats.delta_routes += delta.len() as u64;
        if let Some(m) = &self.metrics {
            m.deltas_applied.inc();
            m.delta_routes.add(delta.len() as u64);
            m.apply_ns.observe(t0.elapsed().as_nanos() as u64);
        }
        self.tables.clone()
    }

    /// The current compiled tables (cheap clone).
    pub fn tables(&self) -> RouteTables {
        self.tables.clone()
    }

    /// Total ground-truth routes across all families.
    pub fn route_count(&self) -> usize {
        self.v4.len() + self.v6.len() + self.names.len() + self.xia_routes.len()
    }

    /// The deterministic commit/rebuild counters.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_shares_untouched_families_and_counts_honestly() {
        let mut store = RouteStore::new();
        store.insert_v4(Ipv4Addr::new(10, 0, 0, 0), 8, NextHop::port(1));
        store.insert_name(&Name::parse("/wl/cat/1"), NextHop::port(3));
        let t1 = store.rebuild();
        assert_eq!(store.stats().full_rebuilds, 1);
        assert_eq!(t1.version, 1);

        let mut delta = RouteDelta::new();
        delta.announce_v4(Ipv4Addr::new(10, 1, 2, 0), 24, NextHop::port(7));
        let t2 = store.commit(&delta);
        assert_eq!(t2.version, 2);
        assert_eq!(store.stats().deltas_applied, 1);
        assert_eq!(store.stats().delta_routes, 1);
        assert_eq!(store.stats().full_rebuilds, 1, "a commit is not a rebuild");
        assert_eq!(t2.lookup_v4(Ipv4Addr::new(10, 1, 2, 9)), Some(NextHop::port(7)));
        assert_eq!(t2.lookup_v4(Ipv4Addr::new(10, 9, 9, 9)), Some(NextHop::port(1)));
        assert_eq!(t2.lookup_name(&Name::parse("/wl/cat/1/seg0")), Some(NextHop::port(3)));
    }

    #[test]
    fn metrics_mirror_the_stats() {
        let registry = Registry::new();
        let mut store = RouteStore::new();
        store.attach_metrics(&registry, &[("node", "t")]);
        store.insert_v6(Ipv6Addr::new([0xfdaa, 0, 0, 0, 0, 0, 0, 0]), 16, NextHop::port(2));
        store.rebuild();
        let mut delta = RouteDelta::new();
        delta.announce_v6(Ipv6Addr::new([0xfdaa, 1, 0, 0, 0, 0, 0, 0]), 32, NextHop::port(5));
        delta.withdraw_v6(Ipv6Addr::new([0xfdaa, 2, 0, 0, 0, 0, 0, 0]), 32);
        store.commit(&delta);
        store.note_epoch_swap();
        let snap = registry.snapshot();
        assert_eq!(snap.sum_where("dip_routes_full_rebuilds_total", &[]), 1);
        assert_eq!(snap.sum_where("dip_routes_deltas_applied_total", &[]), 1);
        assert_eq!(snap.sum_where("dip_routes_delta_routes_total", &[]), 2);
        assert_eq!(snap.sum_where("dip_routes_epoch_swaps_total", &[]), 1);
    }
}

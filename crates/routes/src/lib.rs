//! # dip-routes — scalable, incrementally-updatable forwarding state
//!
//! The paper's single shared L3 core only matters if its forwarding
//! state survives real scale: a million IP routes, hundreds of
//! thousands of names, and a control plane that flaps prefixes under
//! live traffic. This crate owns that state for every protocol
//! (DESIGN.md §14):
//!
//! * [`lpm`] — a compressed multibit/poptrie-style LPM (direct 2^16
//!   root, stride-8 popcount-navigated chunks, run-compressed leaves)
//!   holding ≥1M IPv4 and ≥500k IPv6 routes, verified against the
//!   linear-scan oracle;
//! * [`name_fib`] / [`xia_fib`] — a hash-compacted NDN name FIB
//!   (rolling per-depth prefix hashes, deepest-first probes) and a
//!   flattened XIA route table that preserves the declared-type
//!   distinction;
//! * [`delta`] — [`RouteDelta`] add/withdraw/replace batches, the unit
//!   of incremental update;
//! * [`store`] — [`RouteStore`], the authoritative ground truth whose
//!   `commit` derives the next immutable [`RouteTables`] version
//!   copy-on-write (only touched chunks rebuilt, untouched families
//!   `Arc`-shared), plus the `dip_routes_*` telemetry family;
//! * [`synth`] — deterministic distinct-route generators for the scale
//!   tests and benches.
//!
//! Everything published to a dataplane is immutable: workers swap
//! whole [`RouteTables`] values at epoch boundaries and never observe
//! a half-applied delta. `diplint` pins delta application and
//! compressed-table construction to this crate.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod delta;
pub mod lpm;
pub mod name_fib;
pub mod store;
pub mod synth;
pub mod xia_fib;

pub use delta::RouteDelta;
pub use lpm::CompressedLpm;
pub use name_fib::CompactNameFib;
pub use store::{RouteStore, RouteTables, StoreStats};
pub use synth::{synthesize_v4, synthesize_v6};
pub use xia_fib::CompactXia;

//! Poptrie-style compressed multibit LPM with copy-on-write deltas.
//!
//! The CRAM lens (PAPERS.md): a million-route FIB is *compressible*
//! because next-hop information is massively redundant — long runs of
//! adjacent prefixes share a hop. The layout here is the classic
//! direct-pointing + poptrie split:
//!
//! * a 2^16-entry **root array** direct-indexes the top 16 destination
//!   bits. Routes of length ≤ 16 are leaf-pushed into a flat
//!   `root_leaf` table (one `Option<NextHop>` per slot); routes longer
//!   than 16 bits live in an immutable per-slot [`Chunk`];
//! * a **chunk** is a stride-8 multibit trie in poptrie encoding: each
//!   node holds a 256-bit `vector` bitmap (set ⇒ the byte value
//!   descends into a child node) and a 256-bit `leafvec` bitmap marking
//!   the start of each run of equal leaf values, so popcount arithmetic
//!   replaces pointers and equal-next-hop runs cost one stored leaf.
//!
//! A lookup is: index the root by the top 16 bits, walk the chunk one
//! byte at a time (`vector` bit set ⇒ popcount into the child; clear ⇒
//! popcount into the leaf run), and fall back to `root_leaf` when the
//! chunk has no covering route — a chunk only ever holds len > 16
//! routes, so a chunk hit is always the longer match.
//!
//! Updates never mutate published state. The authoritative routes live
//! in a [`PrefixStore`] (two ordered maps, short/long); applying a
//! delta clones the 65 536-slot chunk vector (cheap: `Option<Arc>`s),
//! rebuilds only the touched chunks from the store, and recomputes only
//! the `root_leaf` ranges covered by changed short prefixes. Readers
//! holding the previous [`CompressedLpm`] keep a consistent table —
//! the epoch swap machinery in the dataplane decides when they move.

use dip_tables::fib::NextHop;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Number of direct-pointing root slots (top 16 bits).
pub(crate) const SLOTS: usize = 1 << 16;

/// Left-aligned mask of the top `len` bits of a `u128`.
#[inline]
pub(crate) fn mask_bits(len: u8) -> u128 {
    if len == 0 {
        0
    } else {
        u128::MAX << (128 - u32::from(len))
    }
}

/// The byte covering bits `[depth, depth + 8)` of a left-aligned key.
#[inline]
fn byte_at(bits: u128, depth: u8) -> usize {
    ((bits >> (120 - u32::from(depth))) & 0xff) as usize
}

#[inline]
fn bm_get(bm: &[u64; 4], v: usize) -> bool {
    (bm[v >> 6] >> (v & 63)) & 1 == 1
}

#[inline]
fn bm_set(bm: &mut [u64; 4], v: usize) {
    bm[v >> 6] |= 1 << (v & 63);
}

/// Number of set bits strictly below position `v`.
#[inline]
fn bm_rank(bm: &[u64; 4], v: usize) -> usize {
    let word = v >> 6;
    let off = v & 63;
    let mut r = 0usize;
    for w in bm.iter().take(word) {
        r += w.count_ones() as usize;
    }
    if off > 0 {
        r += (bm[word] & ((1u64 << off) - 1)).count_ones() as usize;
    }
    r
}

/// The authoritative (uncompressed) prefix map for one address family:
/// ordered maps keyed by `(left-aligned bits, length)`, split at the
/// direct-pointing boundary so a chunk rebuild is one range scan and a
/// `root_leaf` recompute never touches long routes.
#[derive(Clone, Debug, Default)]
pub(crate) struct PrefixStore {
    /// Routes with length ≤ 16 (leaf-pushed into the root array).
    short: BTreeMap<(u128, u8), NextHop>,
    /// Routes with length > 16 (compiled into per-slot chunks).
    long: BTreeMap<(u128, u8), NextHop>,
}

impl PrefixStore {
    /// Inserts (or replaces) a route; returns whether anything changed.
    pub(crate) fn insert(&mut self, bits: u128, len: u8, next_hop: NextHop) -> bool {
        let bits = bits & mask_bits(len);
        let map = if len <= 16 { &mut self.short } else { &mut self.long };
        map.insert((bits, len), next_hop) != Some(next_hop)
    }

    /// Removes a route; returns whether it existed.
    pub(crate) fn remove(&mut self, bits: u128, len: u8) -> bool {
        let bits = bits & mask_bits(len);
        let map = if len <= 16 { &mut self.short } else { &mut self.long };
        map.remove(&(bits, len)).is_some()
    }

    pub(crate) fn len(&self) -> usize {
        self.short.len() + self.long.len()
    }

    pub(crate) fn clear(&mut self) {
        self.short.clear();
        self.long.clear();
    }

    /// Every route, as `(bits, len, next_hop)` (test oracle).
    #[cfg(test)]
    pub(crate) fn routes(&self) -> impl Iterator<Item = (u128, u8, NextHop)> + '_ {
        self.short.iter().chain(self.long.iter()).map(|(&(bits, len), &nh)| (bits, len, nh))
    }

    /// The long routes whose top 16 bits equal `slot`, in key order.
    fn slot_routes(&self, slot: u16) -> Vec<(u128, u8, NextHop)> {
        let start = (u128::from(slot) << 112, 0u8);
        let iter = if slot == u16::MAX {
            self.long.range(start..)
        } else {
            self.long.range(start..((u128::from(slot) + 1) << 112, 0u8))
        };
        iter.map(|(&(bits, len), &nh)| (bits, len, nh)).collect()
    }

    /// The longest short route covering `slot` (what `root_leaf[slot]`
    /// must hold).
    fn best_short(&self, slot: u16) -> Option<NextHop> {
        let bits = u128::from(slot) << 112;
        (0..=16u8).rev().find_map(|len| self.short.get(&(bits & mask_bits(len), len)).copied())
    }
}

/// One poptrie node: stride-8, popcount-navigated.
#[derive(Clone, Copy, Debug, Default)]
struct PNode {
    /// Bit `v` set ⇒ byte value `v` descends into a child node.
    vector: [u64; 4],
    /// Bit `v` set ⇒ a new run of equal leaf values starts at `v`.
    leafvec: [u64; 4],
    /// Index of this node's first leaf run in `Chunk::leaves`.
    base0: u32,
    /// Index of this node's first child in `Chunk::nodes`.
    base1: u32,
}

/// An immutable compiled sub-trie holding every len > 16 route of one
/// root slot. Chunks are shared (`Arc`) between table versions and
/// rebuilt whole when a delta touches their slot.
#[derive(Debug)]
pub(crate) struct Chunk {
    nodes: Vec<PNode>,
    /// Run-compressed leaves; `None` means "no len > 16 route covers
    /// this range — fall back to the root leaf table".
    leaves: Vec<Option<NextHop>>,
}

impl Chunk {
    /// Compiles the chunk for one slot from its long routes. All routes
    /// must share the slot's top 16 bits and have `len > 16`.
    fn build(routes: &[(u128, u8, NextHop)]) -> Chunk {
        let mut chunk = Chunk { nodes: vec![PNode::default()], leaves: Vec::new() };
        chunk.fill(0, routes, 16, None);
        chunk
    }

    /// Fills node `node_idx` covering bits `[depth, depth + 8)`, with
    /// `inherited` the best route already matched above this node
    /// (leaf pushing).
    fn fill(
        &mut self,
        node_idx: usize,
        routes: &[(u128, u8, NextHop)],
        depth: u8,
        inherited: Option<NextHop>,
    ) {
        // For each of the 256 byte values: the best route terminating
        // within this stride, and the routes that need a deeper node.
        let mut best: Vec<Option<(u8, NextHop)>> = vec![None; 256];
        let mut deeper: Vec<Vec<(u128, u8, NextHop)>> = vec![Vec::new(); 256];
        for &(bits, len, nh) in routes {
            debug_assert!(len > depth, "route shorter than its node");
            if len <= depth + 8 {
                let span = 1usize << (depth + 8 - len);
                let start = byte_at(bits, depth);
                for slot in best.iter_mut().skip(start).take(span) {
                    if slot.is_none_or(|(l, _)| l < len) {
                        *slot = Some((len, nh));
                    }
                }
            } else {
                deeper[byte_at(bits, depth)].push((bits, len, nh));
            }
        }
        let mut vector = [0u64; 4];
        let mut leafvec = [0u64; 4];
        let base0 = self.leaves.len() as u32;
        let mut prev: Option<Option<NextHop>> = None;
        let mut children = 0u32;
        for v in 0..256 {
            if !deeper[v].is_empty() {
                bm_set(&mut vector, v);
                children += 1;
            } else {
                let val = best[v].map(|(_, nh)| nh).or(inherited);
                if prev != Some(val) {
                    bm_set(&mut leafvec, v);
                    self.leaves.push(val);
                    prev = Some(val);
                }
            }
        }
        let base1 = self.nodes.len() as u32;
        self.nodes[node_idx] = PNode { vector, leafvec, base0, base1 };
        self.nodes.extend((0..children).map(|_| PNode::default()));
        let mut child = 0u32;
        for v in 0..256 {
            if deeper[v].is_empty() {
                continue;
            }
            let pushed = best[v].map(|(_, nh)| nh).or(inherited);
            let sub = std::mem::take(&mut deeper[v]);
            self.fill((base1 + child) as usize, &sub, depth + 8, pushed);
            child += 1;
        }
    }

    /// Longest len > 16 match, or `None` (fall back to the root leaf).
    fn lookup(&self, bits: u128) -> Option<NextHop> {
        let mut idx = 0usize;
        let mut depth = 16u8;
        loop {
            let node = &self.nodes[idx];
            let v = byte_at(bits, depth);
            if bm_get(&node.vector, v) {
                idx = node.base1 as usize + bm_rank(&node.vector, v);
                depth += 8;
            } else {
                let run = bm_rank(&node.leafvec, v) + usize::from(bm_get(&node.leafvec, v));
                return self.leaves[node.base0 as usize + run - 1];
            }
        }
    }

    fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn leaf_count(&self) -> usize {
        self.leaves.len()
    }
}

/// A compiled, immutable, cheaply-clonable LPM table for one address
/// family (`Clone` is two `Arc` bumps — this is what rides inside a
/// route snapshot through the epoch cell).
#[derive(Clone, Debug)]
pub struct CompressedLpm {
    chunks: Arc<Vec<Option<Arc<Chunk>>>>,
    root_leaf: Arc<Vec<Option<NextHop>>>,
    len: usize,
}

impl Default for CompressedLpm {
    fn default() -> Self {
        CompressedLpm {
            chunks: Arc::new(vec![None; SLOTS]),
            root_leaf: Arc::new(vec![None; SLOTS]),
            len: 0,
        }
    }
}

impl CompressedLpm {
    /// Compiles the whole table from the authoritative store (the
    /// full-rebuild path — the delta path is [`CompressedLpm::apply_delta`]).
    pub(crate) fn build_from(store: &PrefixStore) -> CompressedLpm {
        let mut chunks: Vec<Option<Arc<Chunk>>> = vec![None; SLOTS];
        let mut acc: Vec<(u128, u8, NextHop)> = Vec::new();
        let mut cur: Option<u16> = None;
        for (&(bits, len), &nh) in &store.long {
            let slot = (bits >> 112) as u16;
            if cur != Some(slot) {
                if let Some(s) = cur {
                    chunks[s as usize] = Some(Arc::new(Chunk::build(&acc)));
                    acc.clear();
                }
                cur = Some(slot);
            }
            acc.push((bits, len, nh));
        }
        if let Some(s) = cur {
            chunks[s as usize] = Some(Arc::new(Chunk::build(&acc)));
        }
        // Leaf-push short routes by ascending length so longer prefixes
        // overwrite the slots they cover.
        let mut root_leaf: Vec<Option<NextHop>> = vec![None; SLOTS];
        let mut shorts: Vec<(u128, u8, NextHop)> =
            store.short.iter().map(|(&(bits, len), &nh)| (bits, len, nh)).collect();
        shorts.sort_by_key(|&(_, len, _)| len);
        for (bits, len, nh) in shorts {
            let start = (bits >> 112) as usize;
            let span = 1usize << (16 - len);
            for slot in root_leaf.iter_mut().skip(start).take(span) {
                *slot = Some(nh);
            }
        }
        CompressedLpm { chunks: Arc::new(chunks), root_leaf: Arc::new(root_leaf), len: store.len() }
    }

    /// Applies a committed delta copy-on-write: rebuilds only the
    /// chunks in `slots` and the `root_leaf` ranges covered by the
    /// changed short prefixes in `shorts`; everything else is shared
    /// with `self` by `Arc`. `store` must already reflect the delta.
    pub(crate) fn apply_delta(
        &self,
        store: &PrefixStore,
        slots: &BTreeSet<u16>,
        shorts: &[(u128, u8)],
    ) -> CompressedLpm {
        let chunks = if slots.is_empty() {
            Arc::clone(&self.chunks)
        } else {
            let mut v = (*self.chunks).clone();
            for &slot in slots {
                let routes = store.slot_routes(slot);
                v[slot as usize] =
                    if routes.is_empty() { None } else { Some(Arc::new(Chunk::build(&routes))) };
            }
            Arc::new(v)
        };
        let root_leaf = if shorts.is_empty() {
            Arc::clone(&self.root_leaf)
        } else {
            let mut rl = (*self.root_leaf).clone();
            for &(bits, len) in shorts {
                let start = (bits >> 112) as usize;
                let span = 1usize << (16 - len);
                for (off, slot) in rl.iter_mut().skip(start).take(span).enumerate() {
                    *slot = store.best_short((start + off) as u16);
                }
            }
            Arc::new(rl)
        };
        CompressedLpm { chunks, root_leaf, len: store.len() }
    }

    /// Longest-prefix match on a left-aligned 128-bit key (IPv4 keys
    /// are `addr << 96`). A chunk hit always wins: chunks hold only
    /// len > 16 routes, strictly longer than anything leaf-pushed into
    /// the root.
    #[inline]
    pub fn lookup_bits(&self, bits: u128) -> Option<NextHop> {
        let slot = (bits >> 112) as usize;
        if let Some(chunk) = &self.chunks[slot] {
            if let Some(nh) = chunk.lookup(bits) {
                return Some(nh);
            }
        }
        self.root_leaf[slot]
    }

    /// Number of routes compiled into this table.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table holds no routes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `(chunks, nodes, leaves)` — the compressed footprint, for
    /// diagnostics and the scale benchmarks.
    pub fn footprint(&self) -> (usize, usize, usize) {
        let mut chunks = 0;
        let mut nodes = 0;
        let mut leaves = 0;
        for c in self.chunks.iter().flatten() {
            chunks += 1;
            nodes += c.node_count();
            leaves += c.leaf_count();
        }
        (chunks, nodes, leaves)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dip_crypto::DetRng;

    fn v4_bits(a: u8, b: u8, c: u8, d: u8) -> u128 {
        u128::from(u32::from_be_bytes([a, b, c, d])) << 96
    }

    fn build(routes: &[(u128, u8, NextHop)]) -> (PrefixStore, CompressedLpm) {
        let mut store = PrefixStore::default();
        for &(bits, len, nh) in routes {
            store.insert(bits, len, nh);
        }
        let lpm = CompressedLpm::build_from(&store);
        (store, lpm)
    }

    /// Linear-scan oracle: the longest route whose masked bits cover
    /// the key.
    fn oracle(store: &PrefixStore, bits: u128) -> Option<NextHop> {
        store
            .routes()
            .filter(|&(p, len, _)| (bits ^ p) & mask_bits(len) == 0)
            .max_by_key(|&(_, len, _)| len)
            .map(|(_, _, nh)| nh)
    }

    #[test]
    fn default_route_host_routes_and_overlapping_covers() {
        let (_, lpm) = build(&[
            (0, 0, NextHop::port(1)),                     // default
            (v4_bits(10, 0, 0, 0), 8, NextHop::port(2)),  // short cover
            (v4_bits(10, 1, 0, 0), 16, NextHop::port(3)), // short, longer
            (v4_bits(10, 1, 2, 0), 24, NextHop::port(4)), // long cover
            (v4_bits(10, 1, 2, 3), 32, NextHop::port(5)), // host route
        ]);
        assert_eq!(lpm.lookup_bits(v4_bits(192, 0, 2, 1)), Some(NextHop::port(1)));
        assert_eq!(lpm.lookup_bits(v4_bits(10, 9, 9, 9)), Some(NextHop::port(2)));
        assert_eq!(lpm.lookup_bits(v4_bits(10, 1, 9, 9)), Some(NextHop::port(3)));
        assert_eq!(lpm.lookup_bits(v4_bits(10, 1, 2, 9)), Some(NextHop::port(4)));
        assert_eq!(lpm.lookup_bits(v4_bits(10, 1, 2, 3)), Some(NextHop::port(5)));
        assert_eq!(lpm.len(), 5);
    }

    #[test]
    fn slot_boundary_len16_vs_len17() {
        // /16 is leaf-pushed into the root, /17 lives in a chunk; the
        // chunk must win exactly on its half of the slot.
        let (_, lpm) = build(&[
            (v4_bits(10, 1, 0, 0), 16, NextHop::port(1)),
            (v4_bits(10, 1, 128, 0), 17, NextHop::port(2)),
        ]);
        assert_eq!(lpm.lookup_bits(v4_bits(10, 1, 0, 1)), Some(NextHop::port(1)));
        assert_eq!(lpm.lookup_bits(v4_bits(10, 1, 200, 1)), Some(NextHop::port(2)));
        assert_eq!(lpm.lookup_bits(v4_bits(10, 2, 0, 0)), None);
    }

    #[test]
    fn empty_table_and_single_slash128() {
        let (_, empty) = build(&[]);
        assert_eq!(empty.lookup_bits(0), None);
        assert!(empty.is_empty());

        let key = 0xfdaa_0123_4567_89ab_cdef_0011_2233_4455u128;
        let (_, lpm) = build(&[(key, 128, NextHop::port(9))]);
        assert_eq!(lpm.lookup_bits(key), Some(NextHop::port(9)));
        assert_eq!(lpm.lookup_bits(key ^ 1), None);
        assert_eq!(lpm.lookup_bits(key ^ (1 << 127)), None);
    }

    #[test]
    fn random_tables_match_linear_scan_oracle() {
        let (n_routes, n_probes) =
            if cfg!(debug_assertions) { (3_000, 400) } else { (60_000, 2_000) };
        for (width, lens) in [(32u8, 1u8..=32u8), (128, 12..=128)] {
            let mut rng = DetRng::seed_from_u64(0x9e37_79b9 ^ u64::from(width));
            let mut store = PrefixStore::default();
            let mut inserted = Vec::new();
            while inserted.len() < n_routes {
                let bits = (u128::from(rng.next_u64()) << 64 | u128::from(rng.next_u64()))
                    & mask_bits(width);
                let len =
                    rng.gen_range_inclusive(u64::from(*lens.start()), u64::from(*lens.end())) as u8;
                let nh = NextHop::port(rng.gen_range_inclusive(1, 64) as u32);
                if store.insert(bits, len, nh) {
                    inserted.push((bits & mask_bits(len), len));
                }
            }
            let lpm = CompressedLpm::build_from(&store);
            assert_eq!(lpm.len(), store.len());
            for i in 0..n_probes {
                // Half the probes target an installed prefix (with the
                // uncovered bits randomized), half are uniform.
                let key = if i % 2 == 0 {
                    let (bits, len) = inserted[rng.gen_index(inserted.len())];
                    let noise = (u128::from(rng.next_u64()) << 64 | u128::from(rng.next_u64()))
                        & !mask_bits(len);
                    (bits | noise) & mask_bits(width)
                } else {
                    (u128::from(rng.next_u64()) << 64 | u128::from(rng.next_u64()))
                        & mask_bits(width)
                };
                assert_eq!(lpm.lookup_bits(key), oracle(&store, key), "width {width} key {key:x}");
            }
        }
    }

    #[test]
    fn apply_delta_equals_full_rebuild() {
        let mut rng = DetRng::seed_from_u64(7);
        let mut store = PrefixStore::default();
        for _ in 0..500 {
            let bits = v4_bits(10, rng.next_u32() as u8, rng.next_u32() as u8, 0);
            let len = rng.gen_range_inclusive(8, 28) as u8;
            store.insert(bits, len, NextHop::port(rng.gen_range_inclusive(1, 64) as u32));
        }
        let mut lpm = CompressedLpm::build_from(&store);
        for round in 0..20 {
            let mut slots = BTreeSet::new();
            let mut shorts = Vec::new();
            for _ in 0..16 {
                let bits = v4_bits(10, rng.next_u32() as u8, rng.next_u32() as u8, 0);
                let len = rng.gen_range_inclusive(4, 28) as u8;
                let changed = if rng.gen_bool(0.4) {
                    store.remove(bits, len)
                } else {
                    store.insert(bits, len, NextHop::port(rng.gen_range_inclusive(1, 64) as u32))
                };
                if changed {
                    if len <= 16 {
                        shorts.push((bits & mask_bits(len), len));
                    } else {
                        slots.insert((bits >> 112) as u16);
                    }
                }
            }
            lpm = lpm.apply_delta(&store, &slots, &shorts);
            let rebuilt = CompressedLpm::build_from(&store);
            for _ in 0..200 {
                let key =
                    v4_bits(10, rng.next_u32() as u8, rng.next_u32() as u8, rng.next_u32() as u8);
                assert_eq!(lpm.lookup_bits(key), rebuilt.lookup_bits(key), "round {round}");
            }
            assert_eq!(lpm.len(), rebuilt.len());
        }
    }
}

//! The delta-equivalence property: for random churn sequences over
//! every family, `snapshot + delta ≡ rebuilt snapshot` — a store that
//! commits deltas copy-on-write must answer every lookup exactly like
//! a fresh store rebuilt from the same ground truth.

use dip_crypto::DetRng;
use dip_routes::{synthesize_v4, synthesize_v6, RouteDelta, RouteStore, RouteTables};
use dip_tables::fib::NextHop;
use dip_tables::XiaNextHop;
use dip_wire::ipv4::Ipv4Addr;
use dip_wire::ipv6::Ipv6Addr;
use dip_wire::ndn::Name;
use dip_wire::xia::{Xid, XidType};
use std::collections::BTreeSet;

/// The churn universe: fixed prefix pools per family; `live` tracks
/// which pool entries are currently announced. Pool next-hops mutate
/// on replace ops so the reference rebuild sees the same ground truth.
struct Universe {
    v4: Vec<(Ipv4Addr, u8, NextHop)>,
    v6: Vec<(Ipv6Addr, u8, NextHop)>,
    names: Vec<(Name, NextHop)>,
    xia: Vec<(XidType, Xid, XiaNextHop)>,
    live_v4: BTreeSet<usize>,
    live_v6: BTreeSet<usize>,
    live_names: BTreeSet<usize>,
    live_xia: BTreeSet<usize>,
}

fn universe(seed: u64) -> Universe {
    let mut rng = DetRng::seed_from_u64(seed);
    let names: Vec<_> = (0..300)
        .map(|_| {
            let depth = rng.gen_range_inclusive(2, 4);
            let mut text = String::from("/churn");
            for _ in 0..depth {
                text.push_str(&format!("/{:03x}", rng.next_u32() & 0xfff));
            }
            (Name::parse(&text), NextHop::port(rng.gen_range_inclusive(1, 64) as u32))
        })
        .collect();
    let xia: Vec<_> = (0..200)
        .map(|i: usize| {
            let ty = if i % 3 == 0 { XidType::Ad } else { XidType::Cid };
            let nh =
                if i % 7 == 0 { XiaNextHop::Local } else { XiaNextHop::Port((i % 16) as u32 + 1) };
            (ty, Xid::derive(format!("eq-{i}").as_bytes()), nh)
        })
        .collect();
    let v4 = synthesize_v4(800, seed ^ 4);
    let v6 = synthesize_v6(800, seed ^ 6);
    Universe {
        live_v4: (0..v4.len()).collect(),
        live_v6: (0..v6.len()).collect(),
        live_names: (0..names.len()).collect(),
        live_xia: (0..xia.len()).collect(),
        v4,
        v6,
        names,
        xia,
    }
}

/// A fresh store compiled from the universe's current ground truth.
fn reference_rebuild(u: &Universe) -> RouteTables {
    let mut fresh = RouteStore::new();
    for &i in &u.live_v4 {
        let (a, l, nh) = u.v4[i];
        fresh.insert_v4(a, l, nh);
    }
    for &i in &u.live_v6 {
        let (a, l, nh) = u.v6[i];
        fresh.insert_v6(a, l, nh);
    }
    for &i in &u.live_names {
        let (ref n, nh) = u.names[i];
        fresh.insert_name(n, nh);
    }
    fresh.declare_xia_type(XidType::Ad);
    fresh.declare_xia_type(XidType::Cid);
    for &i in &u.live_xia {
        let (ty, xid, nh) = u.xia[i];
        fresh.insert_xia(ty, xid, nh);
    }
    fresh.rebuild()
}

#[test]
fn snapshot_plus_delta_equals_rebuilt_snapshot() {
    let mut u = universe(0xde17a);
    let mut rng = DetRng::seed_from_u64(0x5eed);

    let mut store = RouteStore::new();
    for &(a, l, nh) in &u.v4 {
        store.insert_v4(a, l, nh);
    }
    for &(a, l, nh) in &u.v6 {
        store.insert_v6(a, l, nh);
    }
    for (n, nh) in &u.names {
        store.insert_name(n, *nh);
    }
    store.declare_xia_type(XidType::Ad);
    store.declare_xia_type(XidType::Cid);
    for &(ty, xid, nh) in &u.xia {
        store.insert_xia(ty, xid, nh);
    }
    store.rebuild();

    let rounds: u64 = if cfg!(debug_assertions) { 12 } else { 40 };
    for round in 0..rounds {
        // One random churn batch: flaps (withdraw live / re-announce
        // dead) and replaces (live route, new next hop) per family.
        let mut delta = RouteDelta::new();
        for _ in 0..rng.gen_range_inclusive(1, 24) {
            match rng.gen_index(4) {
                0 => {
                    let i = rng.gen_index(u.v4.len());
                    if u.live_v4.contains(&i) && rng.gen_bool(0.3) {
                        u.v4[i].2 = NextHop::port(rng.gen_range_inclusive(1, 64) as u32);
                        let (a, l, nh) = u.v4[i];
                        delta.announce_v4(a, l, nh); // replace
                    } else if u.live_v4.remove(&i) {
                        let (a, l, _) = u.v4[i];
                        delta.withdraw_v4(a, l);
                    } else {
                        u.live_v4.insert(i);
                        let (a, l, nh) = u.v4[i];
                        delta.announce_v4(a, l, nh);
                    }
                }
                1 => {
                    let i = rng.gen_index(u.v6.len());
                    if u.live_v6.remove(&i) {
                        let (a, l, _) = u.v6[i];
                        delta.withdraw_v6(a, l);
                    } else {
                        u.live_v6.insert(i);
                        let (a, l, nh) = u.v6[i];
                        delta.announce_v6(a, l, nh);
                    }
                }
                2 => {
                    let i = rng.gen_index(u.names.len());
                    if u.live_names.remove(&i) {
                        delta.withdraw_name(u.names[i].0.clone());
                    } else {
                        u.live_names.insert(i);
                        let (ref n, nh) = u.names[i];
                        delta.announce_name(n.clone(), nh);
                    }
                }
                _ => {
                    let i = rng.gen_index(u.xia.len());
                    let (ty, xid, nh) = u.xia[i];
                    if u.live_xia.remove(&i) {
                        delta.withdraw_xia(ty, xid);
                    } else {
                        u.live_xia.insert(i);
                        delta.announce_xia(ty, xid, nh);
                    }
                }
            }
        }
        let incremental = store.commit(&delta);
        let reference = reference_rebuild(&u);

        // Probe every pool prefix — live and withdrawn — with the
        // uncovered bits randomized, plus the exact prefix address.
        for &(a, l, _) in &u.v4 {
            let mask = if l == 0 { 0 } else { u32::MAX << (32 - u32::from(l)) };
            for key in [a.to_u32(), a.to_u32() | (rng.next_u32() & !mask)] {
                let probe = Ipv4Addr::from_u32(key);
                assert_eq!(
                    incremental.lookup_v4(probe),
                    reference.lookup_v4(probe),
                    "round {round} v4 {probe:?}"
                );
            }
        }
        for &(a, l, _) in &u.v6 {
            let mask = if l == 0 { 0 } else { u128::MAX << (128 - u32::from(l)) };
            let noise = (u128::from(rng.next_u64()) << 64 | u128::from(rng.next_u64())) & !mask;
            for key in [a.to_u128(), a.to_u128() | noise] {
                let probe = Ipv6Addr::from_u128(key);
                assert_eq!(
                    incremental.lookup_v6(probe),
                    reference.lookup_v6(probe),
                    "round {round} v6 {probe:?}"
                );
            }
        }
        for (n, _) in &u.names {
            assert_eq!(incremental.lookup_name(n), reference.lookup_name(n), "round {round} {n:?}");
            assert_eq!(
                incremental.lookup_name_compact(n.compact32()),
                reference.lookup_name_compact(n.compact32()),
                "round {round} compact {n:?}"
            );
        }
        for &(ty, xid, _) in &u.xia {
            assert_eq!(
                incremental.lookup_xia(ty, &xid),
                reference.lookup_xia(ty, &xid),
                "round {round} xia"
            );
        }
        assert_eq!(incremental.version, round + 2, "one version per commit after the seed build");
        assert_eq!(incremental.route_count(), reference.route_count());
    }
    let stats = store.stats();
    assert_eq!(stats.full_rebuilds, 1, "churn must never trigger a rebuild");
    assert_eq!(stats.deltas_applied, rounds);
}

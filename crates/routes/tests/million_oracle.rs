//! The scale gate: the compressed LPM must hold ≥1M distinct IPv4 and
//! ≥500k distinct IPv6 routes and agree with the linear-scan oracle on
//! sampled *and* adversarial keys (default route, host routes, nested
//! overlapping covers, prefix-edge probes).
//!
//! Sizes scale down in debug builds so the workspace suite stays
//! fast; `scripts/check.sh` runs `million_route_oracle_v4_v6` under
//! `--release` at full scale.

use dip_crypto::DetRng;
use dip_routes::{synthesize_v4, synthesize_v6, RouteDelta, RouteStore};
use dip_tables::fib::NextHop;
use dip_wire::ipv4::Ipv4Addr;
use dip_wire::ipv6::Ipv6Addr;

fn mask32(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - u32::from(len))
    }
}

fn mask128(len: u8) -> u128 {
    if len == 0 {
        0
    } else {
        u128::MAX << (128 - u32::from(len))
    }
}

/// Linear scan over the full route list: the longest covering prefix.
fn oracle_v4(routes: &[(Ipv4Addr, u8, NextHop)], key: u32) -> Option<NextHop> {
    routes
        .iter()
        .filter(|&&(p, len, _)| (key ^ p.to_u32()) & mask32(len) == 0)
        .max_by_key(|&&(_, len, _)| len)
        .map(|&(_, _, nh)| nh)
}

fn oracle_v6(routes: &[(Ipv6Addr, u8, NextHop)], key: u128) -> Option<NextHop> {
    routes
        .iter()
        .filter(|&&(p, len, _)| (key ^ p.to_u128()) & mask128(len) == 0)
        .max_by_key(|&&(_, len, _)| len)
        .map(|&(_, _, nh)| nh)
}

#[test]
fn million_route_oracle_v4_v6() {
    let (n_v4, n_v6, n_probes) =
        if cfg!(debug_assertions) { (20_000, 10_000, 200) } else { (1_000_000, 500_000, 1_500) };

    // Adversarial overlay on top of the synthetic bulk: a default
    // route, nested covers of the same address, and host routes at
    // both widths.
    let mut v4: Vec<(Ipv4Addr, u8, NextHop)> = vec![
        (Ipv4Addr::new(0, 0, 0, 0), 0, NextHop::port(99)),
        (Ipv4Addr::new(10, 0, 0, 0), 8, NextHop::port(81)),
        (Ipv4Addr::new(10, 64, 0, 0), 10, NextHop::port(82)),
        (Ipv4Addr::new(10, 64, 0, 0), 16, NextHop::port(83)),
        (Ipv4Addr::new(10, 64, 0, 0), 17, NextHop::port(84)),
        (Ipv4Addr::new(10, 64, 7, 0), 24, NextHop::port(85)),
        (Ipv4Addr::new(10, 64, 7, 42), 32, NextHop::port(86)),
    ];
    v4.extend(synthesize_v4(n_v4, 0xa11ce));
    let mut v6: Vec<(Ipv6Addr, u8, NextHop)> = vec![
        (Ipv6Addr::new([0, 0, 0, 0, 0, 0, 0, 0]), 0, NextHop::port(99)),
        (Ipv6Addr::new([0xfdaa, 0, 0, 0, 0, 0, 0, 0]), 16, NextHop::port(81)),
        (Ipv6Addr::new([0xfdaa, 0xbb00, 0, 0, 0, 0, 0, 0]), 24, NextHop::port(82)),
        (Ipv6Addr::new([0xfdaa, 0xbbcc, 0, 0, 0, 0, 0, 0]), 32, NextHop::port(83)),
        (Ipv6Addr::new([0xfdaa, 0xbbcc, 0xdd00, 0, 0, 0, 0, 1]), 128, NextHop::port(84)),
    ];
    v6.extend(synthesize_v6(n_v6, 0xb0b));

    let mut store = RouteStore::new();
    for &(addr, len, nh) in &v4 {
        store.insert_v4(addr, len, nh);
    }
    for &(addr, len, nh) in &v6 {
        store.insert_v6(addr, len, nh);
    }
    let tables = store.rebuild();
    assert!(tables.v4.len() >= n_v4, "v4 table holds the full distinct set");
    assert!(tables.v6.len() >= n_v6, "v6 table holds the full distinct set");

    let mut rng = DetRng::seed_from_u64(0x0c0ffee);
    // Adversarial fixed probes: exact prefix addresses, the host
    // routes, the default-route fallback, and prefix-edge neighbors.
    let v4_fixed = [
        0u32,
        u32::MAX,
        Ipv4Addr::new(10, 64, 7, 42).to_u32(),
        Ipv4Addr::new(10, 64, 7, 43).to_u32(),
        Ipv4Addr::new(10, 64, 128, 0).to_u32(),
        Ipv4Addr::new(10, 63, 255, 255).to_u32(),
        Ipv4Addr::new(203, 0, 113, 9).to_u32(),
    ];
    for key in v4_fixed {
        assert_eq!(
            tables.lookup_v4(Ipv4Addr::from_u32(key)),
            oracle_v4(&v4, key),
            "v4 fixed {key:#x}"
        );
    }
    for i in 0..n_probes {
        // Alternate prefix-targeted probes (randomize uncovered bits,
        // then also probe the off-by-one neighbor) with uniform keys.
        let key = if i % 2 == 0 {
            let (addr, len, _) = v4[rng.gen_index(v4.len())];
            let noise = rng.next_u32() & !mask32(len);
            (addr.to_u32() | noise) ^ u32::from(i % 4 == 0)
        } else {
            rng.next_u32()
        };
        assert_eq!(
            tables.lookup_v4(Ipv4Addr::from_u32(key)),
            oracle_v4(&v4, key),
            "v4 key {key:#x}"
        );
    }
    let v6_fixed = [
        0u128,
        u128::MAX,
        Ipv6Addr::new([0xfdaa, 0xbbcc, 0xdd00, 0, 0, 0, 0, 1]).to_u128(),
        Ipv6Addr::new([0xfdaa, 0xbbcc, 0xdd00, 0, 0, 0, 0, 2]).to_u128(),
        Ipv6Addr::new([0xfdaa, 0xbbcc, 0xffff, 0, 0, 0, 0, 0]).to_u128(),
        Ipv6Addr::new([0x2001, 0xdb8, 0, 0, 0, 0, 0, 1]).to_u128(),
    ];
    for key in v6_fixed {
        assert_eq!(
            tables.lookup_v6(Ipv6Addr::from_u128(key)),
            oracle_v6(&v6, key),
            "v6 fixed {key:#x}"
        );
    }
    for i in 0..n_probes {
        let key = if i % 2 == 0 {
            let (addr, len, _) = v6[rng.gen_index(v6.len())];
            let noise =
                (u128::from(rng.next_u64()) << 64 | u128::from(rng.next_u64())) & !mask128(len);
            (addr.to_u128() | noise) ^ u128::from(i % 4 == 0)
        } else {
            u128::from(rng.next_u64()) << 64 | u128::from(rng.next_u64())
        };
        assert_eq!(
            tables.lookup_v6(Ipv6Addr::from_u128(key)),
            oracle_v6(&v6, key),
            "v6 key {key:#x}"
        );
    }

    // Deltas keep working at full scale: withdraw a host route, check
    // the next-longest cover takes over, re-announce, check it's back.
    let host = Ipv4Addr::new(10, 64, 7, 42);
    let mut withdraw = RouteDelta::new();
    withdraw.withdraw_v4(host, 32);
    let after = store.commit(&withdraw);
    let mut v4_without: Vec<_> =
        v4.iter().copied().filter(|&(a, l, _)| !(a == host && l == 32)).collect();
    assert_eq!(after.lookup_v4(host), oracle_v4(&v4_without, host.to_u32()));
    let mut announce = RouteDelta::new();
    announce.announce_v4(host, 32, NextHop::port(86));
    v4_without.push((host, 32, NextHop::port(86)));
    let back = store.commit(&announce);
    assert_eq!(back.lookup_v4(host), Some(NextHop::port(86)));
    assert_eq!(store.stats().full_rebuilds, 1, "scale deltas never fall back to rebuild");
}

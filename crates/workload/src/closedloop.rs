//! Closed-loop driving: request/response rounds over the discrete-event
//! simulator, where the *response* gates the next request window.
//!
//! The open-loop driver answers "what breaks at rate X"; this one answers
//! the consumer-visible question — "do my requests come back, intact and
//! authenticated, and how long do they take end-to-end" — over a real
//! multi-hop topology with link latency, bandwidth, and (optionally)
//! scripted faults. Interests draw names from the spec's Zipf catalog;
//! NDN exchanges measure plain interest/data RTT, NDN+OPT exchanges add
//! per-packet source authentication and path validation (the `verified`
//! count). Everything — topology, arrivals, fault draws — derives from
//! the spec's seed, so a run is exactly reproducible.

use std::collections::HashMap;

use crate::models::Zipf;
use crate::trace::catalog_name;
use crate::trace::WorkloadSpec;
use dip_core::DipRouter;
use dip_crypto::DetRng;
use dip_protocols::{ndn, opt::OptSession};
use dip_sim::engine::{Host, Network, NodeId};
use dip_sim::FaultConfig;
use dip_tables::fib::NextHop;

/// Stream separator for closed-loop request draws.
const CLOSED_STREAM: u64 = 0x636c_6f73_6564_6c70;

/// Which request/response exchange the consumer runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExchangeKind {
    /// Plain NDN interest/data.
    Ndn,
    /// NDN+OPT: data packets carry the source-auth + path-validation
    /// chain and the consumer verifies each one.
    NdnOpt,
}

/// Closed-loop driver knobs.
#[derive(Debug, Clone)]
pub struct ClosedLoopConfig {
    /// The exchange under test.
    pub exchange: ExchangeKind,
    /// Total requests to issue.
    pub requests: usize,
    /// Outstanding requests per window (distinct names within a window,
    /// so interest aggregation never hides completions).
    pub concurrency: usize,
    /// Routers on the consumer→producer chain.
    pub routers: usize,
    /// Per-link propagation latency.
    pub link_latency_ns: u64,
    /// Faults applied to the last-hop (router→producer) link — both the
    /// interest and the returning data cross it.
    pub faults: FaultConfig,
}

impl Default for ClosedLoopConfig {
    fn default() -> Self {
        ClosedLoopConfig {
            exchange: ExchangeKind::Ndn,
            requests: 64,
            concurrency: 8,
            routers: 3,
            link_latency_ns: 20_000,
            faults: FaultConfig::reliable(),
        }
    }
}

/// What the consumer saw.
#[derive(Debug, Clone)]
pub struct ClosedLoopReport {
    /// Interests issued.
    pub requests: u64,
    /// Data packets that came back.
    pub completed: u64,
    /// Completions that also passed host verification (NDN+OPT).
    pub verified: u64,
    /// Median window-to-delivery RTT.
    pub p50_rtt_ns: u64,
    /// 99th-percentile window-to-delivery RTT.
    pub p99_rtt_ns: u64,
    /// Virtual time when the run ended.
    pub sim_end_ns: u64,
}

impl ClosedLoopReport {
    /// Fraction of requests answered.
    pub fn completion_frac(&self) -> f64 {
        if self.requests == 0 {
            1.0
        } else {
            self.completed as f64 / self.requests as f64
        }
    }
}

/// Exact percentile of a sorted sample (nearest-rank interpolation).
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Runs `cfg.requests` Zipf-drawn exchanges of `spec`'s catalog over a
/// consumer — chain-of-routers — producer topology.
pub fn run_closed_loop(spec: &WorkloadSpec, cfg: &ClosedLoopConfig) -> ClosedLoopReport {
    let routers = cfg.routers.max(1);
    let secrets: Vec<[u8; 16]> = (0..routers).map(|i| [i as u8 + 1; 16]).collect();
    // Data flows producer → last router → … → first router → consumer,
    // so the session's key chain lists the router secrets in that order.
    let data_path: Vec<[u8; 16]> = secrets.iter().rev().copied().collect();
    let session = OptSession::establish([0xEE; 16], &[9; 16], &data_path);

    let mut contents = HashMap::new();
    for i in 0..spec.catalog_size.max(1) {
        let mut body = format!("content-{i}").into_bytes();
        body.resize(spec.payload_len.max(8), 0x77);
        contents.insert(catalog_name(i).compact32(), body);
    }

    let (consumer_host, producer_host) = match cfg.exchange {
        ExchangeKind::Ndn => (Host::consumer(100), Host::producer(200, contents)),
        ExchangeKind::NdnOpt => (
            Host::verifying_consumer(100, session.host_context()),
            Host::secure_producer(200, contents, session.clone()),
        ),
    };

    let mut net = Network::new(spec.seed);
    let consumer = net.add_host(consumer_host);
    let producer = net.add_host(producer_host);
    let router_ids: Vec<NodeId> = secrets
        .iter()
        .enumerate()
        .map(|(i, s)| net.add_router(DipRouter::new(i as u64 + 1, *s)))
        .collect();
    net.connect(consumer, 0, router_ids[0], 0, cfg.link_latency_ns);
    for w in router_ids.windows(2) {
        net.connect(w[0], 1, w[1], 0, cfg.link_latency_ns);
    }
    net.connect_with(
        router_ids[routers - 1],
        1,
        producer,
        0,
        cfg.link_latency_ns,
        10_000_000_000,
        cfg.faults.clone(),
    );
    for &r in &router_ids {
        let router = net.router_mut(r).expect("chain node is a router");
        for i in 0..spec.catalog_size.max(1) {
            router.state_mut().name_fib.add_route(&catalog_name(i), NextHop::port(1));
        }
    }

    let mut rng = DetRng::seed_from_u64(spec.seed ^ CLOSED_STREAM);
    let zipf = Zipf::new(spec.catalog_size.max(1), spec.zipf_s);
    let mut rtts: Vec<u64> = Vec::new();
    let mut counter = 0u64;
    let (mut issued, mut completed, mut verified, mut seen) = (0usize, 0u64, 0u64, 0usize);
    while issued < cfg.requests {
        let window = cfg.concurrency.clamp(1, spec.catalog_size.max(1)).min(cfg.requests - issued);
        // Distinct names within a window: a duplicate would aggregate in
        // the PIT and make "one request, one data" accounting ambiguous.
        let mut names: Vec<usize> = Vec::with_capacity(window);
        let mut attempts = 0;
        while names.len() < window && attempts < window * 64 {
            attempts += 1;
            let idx = zipf.sample(&mut rng);
            if !names.contains(&idx) {
                names.push(idx);
            }
        }
        while names.len() < window {
            // Zipf is so skewed the rejection loop starved: fall back to
            // round-robin fill so the window always reaches its size.
            let idx = (names.len() + attempts) % spec.catalog_size.max(1);
            if !names.contains(&idx) {
                names.push(idx);
            }
            attempts += 1;
        }
        let base = net.now();
        for (k, idx) in names.iter().enumerate() {
            counter += 1;
            let mut nonce_salt = vec![0u8; 8];
            nonce_salt.copy_from_slice(&counter.to_be_bytes());
            let pkt = ndn::interest(&catalog_name(*idx), 64)
                .to_bytes(&nonce_salt)
                .expect("well-formed interest");
            net.send(consumer, 0, pkt, base + k as u64 * 1_000);
        }
        net.run();
        let host = net.host(consumer).expect("consumer is a host");
        for d in &host.delivered[seen..] {
            completed += 1;
            if d.verified {
                verified += 1;
            }
            rtts.push(d.time.saturating_sub(base));
        }
        seen = host.delivered.len();
        issued += window;
    }

    rtts.sort_unstable();
    ClosedLoopReport {
        requests: issued as u64,
        completed,
        verified,
        p50_rtt_ns: percentile(&rtts, 0.50),
        p99_rtt_ns: percentile(&rtts, 0.99),
        sim_end_ns: net.now(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec { seed: 5, catalog_size: 32, payload_len: 24, ..Default::default() }
    }

    #[test]
    fn ndn_exchanges_all_complete_on_reliable_links() {
        let cfg = ClosedLoopConfig { requests: 24, concurrency: 4, ..Default::default() };
        let r = run_closed_loop(&spec(), &cfg);
        assert_eq!(r.requests, 24);
        assert_eq!(r.completed, 24, "reliable chain answers everything: {r:?}");
        assert!(r.p99_rtt_ns >= r.p50_rtt_ns && r.p50_rtt_ns > 0);
        // 3 routers + 4 links at 20 µs: one round trip is ≥ 160 µs.
        assert!(r.p50_rtt_ns >= 8 * 20_000, "RTT reflects the topology: {r:?}");
    }

    #[test]
    fn ndn_opt_exchanges_verify_end_to_end() {
        let cfg = ClosedLoopConfig {
            exchange: ExchangeKind::NdnOpt,
            requests: 16,
            concurrency: 4,
            ..Default::default()
        };
        let r = run_closed_loop(&spec(), &cfg);
        assert_eq!(r.completed, 16, "{r:?}");
        assert_eq!(r.verified, r.completed, "every data packet authenticates: {r:?}");
    }

    #[test]
    fn lossy_last_hop_degrades_completion_deterministically() {
        let cfg = ClosedLoopConfig {
            requests: 30,
            concurrency: 5,
            faults: FaultConfig::lossy(90.0),
            ..Default::default()
        };
        let a = run_closed_loop(&spec(), &cfg);
        let b = run_closed_loop(&spec(), &cfg);
        assert!(a.completed < a.requests, "90% loss must lose something: {a:?}");
        assert_eq!(a.completed, b.completed, "fault draws are seeded");
        assert_eq!(a.p99_rtt_ns, b.p99_rtt_ns);
    }
}

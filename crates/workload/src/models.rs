//! Statistical workload models, all seeded from the in-repo [`DetRng`].
//!
//! Three ingredients the networking-measurement literature agrees real
//! traffic needs: skewed content popularity (Zipf), heavy-tailed flow
//! sizes (Pareto), and bursty arrivals (Poisson baseline, on/off MMPP
//! for bursts). Each model is a plain struct drawing from a caller-owned
//! RNG, so a generator's entire randomness is one seed.

use dip_crypto::DetRng;

/// Zipf(s) popularity over a catalog of `n` items: item `k` (0-based)
/// carries weight `1/(k+1)^s`. Sampling inverts the precomputed
/// cumulative weight table with a binary search — O(log n) per draw,
/// exact (no rejection), deterministic.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Normalized cumulative weights; `cum[n-1] == 1.0`.
    cum: Vec<f64>,
}

impl Zipf {
    /// A Zipf distribution over `n ≥ 1` items with exponent `s ≥ 0`
    /// (`s = 0` degrades to uniform — the degradation the determinism
    /// suite's sanity check guards against).
    pub fn new(n: usize, s: f64) -> Self {
        let n = n.max(1);
        let mut cum = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cum.push(total);
        }
        for c in &mut cum {
            *c /= total;
        }
        Zipf { cum }
    }

    /// Catalog size.
    pub fn len(&self) -> usize {
        self.cum.len()
    }

    /// Whether the catalog is empty (never: `new` clamps to 1).
    pub fn is_empty(&self) -> bool {
        self.cum.is_empty()
    }

    /// Draws one item index in `0..len()`.
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let u = rng.next_f64();
        self.cum.partition_point(|&c| c < u).min(self.cum.len() - 1)
    }

    /// The theoretical probability of the most popular item,
    /// `1 / H_{n,s}` — what the top-1 empirical frequency must approach.
    pub fn theoretical_top1(&self) -> f64 {
        self.cum[0]
    }
}

/// Bounded Pareto flow sizes: `xm / U^(1/alpha)` capped at `cap`, the
/// classic heavy-tailed "mice and elephants" size mix.
#[derive(Debug, Clone, Copy)]
pub struct BoundedPareto {
    /// Tail exponent (smaller ⇒ heavier tail); typical traffic ≈ 1.1–1.5.
    pub alpha: f64,
    /// Minimum size.
    pub xm: u64,
    /// Hard cap (keeps a single elephant from dominating a short trial).
    pub cap: u64,
}

impl BoundedPareto {
    /// A bounded Pareto with shape `alpha`, minimum `xm`, cap `cap`.
    pub fn new(alpha: f64, xm: u64, cap: u64) -> Self {
        BoundedPareto { alpha: alpha.max(0.05), xm: xm.max(1), cap: cap.max(xm.max(1)) }
    }

    /// Draws one size in `xm ..= cap`.
    pub fn sample(&self, rng: &mut DetRng) -> u64 {
        let u = rng.next_f64().max(1e-12);
        let v = self.xm as f64 / u.powf(1.0 / self.alpha);
        (v as u64).clamp(self.xm, self.cap)
    }
}

/// When packets arrive relative to the offered rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalModel {
    /// Deterministic equal spacing (a hardware traffic generator).
    Uniform,
    /// Poisson: i.i.d. exponential inter-arrival gaps.
    Poisson,
    /// Two-state on/off MMPP: exponential dwell times with the given
    /// means; arrivals are Poisson during ON periods at a rate inflated
    /// by `(on+off)/on` so the long-run average still meets the offered
    /// rate. This is the burst generator — queues see idle valleys and
    /// compressed bursts at identical average load.
    OnOff {
        /// Mean ON-period length in nanoseconds.
        mean_on_ns: u64,
        /// Mean OFF-period length in nanoseconds.
        mean_off_ns: u64,
    },
}

/// A stateful arrival-time generator: successive calls to
/// [`ArrivalGen::next_ns`] yield the non-decreasing timestamps of an
/// arrival process with long-run average `rate_pps`.
#[derive(Debug)]
pub struct ArrivalGen {
    model: ArrivalModel,
    /// Mean gap at the offered rate, ns.
    mean_gap_ns: f64,
    rng: DetRng,
    now_ns: f64,
    /// Remaining ON time (OnOff only).
    on_left_ns: f64,
}

impl ArrivalGen {
    /// A generator for `model` at `rate_pps` packets per second, drawing
    /// from `rng` (hand in a dedicated stream so arrival draws never
    /// perturb content draws).
    pub fn new(model: ArrivalModel, rate_pps: u64, rng: DetRng) -> Self {
        let rate = rate_pps.max(1) as f64;
        ArrivalGen { model, mean_gap_ns: 1e9 / rate, rng, now_ns: 0.0, on_left_ns: 0.0 }
    }

    /// Draws an exponential variate with the given mean.
    fn exp(rng: &mut DetRng, mean: f64) -> f64 {
        let u = rng.next_f64();
        -(1.0 - u).max(1e-12).ln() * mean
    }

    /// The next arrival timestamp in nanoseconds.
    pub fn next_ns(&mut self) -> u64 {
        match self.model {
            ArrivalModel::Uniform => {
                self.now_ns += self.mean_gap_ns;
            }
            ArrivalModel::Poisson => {
                self.now_ns += Self::exp(&mut self.rng, self.mean_gap_ns);
            }
            ArrivalModel::OnOff { mean_on_ns, mean_off_ns } => {
                // Inflate the in-burst rate so ON fraction × burst rate
                // equals the offered average.
                let duty = mean_on_ns as f64 / (mean_on_ns + mean_off_ns).max(1) as f64;
                let burst_gap = self.mean_gap_ns * duty;
                let mut gap = Self::exp(&mut self.rng, burst_gap);
                // Walk through as many OFF periods as the gap spans.
                while gap > self.on_left_ns {
                    gap -= self.on_left_ns;
                    self.now_ns += self.on_left_ns + Self::exp(&mut self.rng, mean_off_ns as f64);
                    self.on_left_ns = Self::exp(&mut self.rng, mean_on_ns as f64);
                }
                self.on_left_ns -= gap;
                self.now_ns += gap;
            }
        }
        self.now_ns as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_and_deterministic() {
        let zipf = Zipf::new(100, 1.1);
        let mut a = DetRng::seed_from_u64(7);
        let mut b = DetRng::seed_from_u64(7);
        let draws_a: Vec<usize> = (0..1_000).map(|_| zipf.sample(&mut a)).collect();
        let draws_b: Vec<usize> = (0..1_000).map(|_| zipf.sample(&mut b)).collect();
        assert_eq!(draws_a, draws_b);
        let top1 = draws_a.iter().filter(|&&k| k == 0).count() as f64 / 1_000.0;
        assert!(top1 > 3.0 / 100.0, "top-1 {top1} should beat uniform by far");
        assert!((zipf.theoretical_top1() - top1).abs() < 0.06, "top-1 {top1} near theory");
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let zipf = Zipf::new(10, 0.0);
        assert!((zipf.theoretical_top1() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn pareto_respects_bounds_and_has_a_tail() {
        let p = BoundedPareto::new(1.2, 4, 1 << 14);
        let mut rng = DetRng::seed_from_u64(3);
        let sizes: Vec<u64> = (0..5_000).map(|_| p.sample(&mut rng)).collect();
        assert!(sizes.iter().all(|&s| (4..=1 << 14).contains(&s)));
        let big = sizes.iter().filter(|&&s| s > 100).count();
        let small = sizes.iter().filter(|&&s| s <= 8).count();
        assert!(big > 50, "tail exists: {big}");
        assert!(small > 2_000, "mice dominate: {small}");
    }

    #[test]
    fn arrivals_hit_the_offered_rate() {
        for model in [
            ArrivalModel::Uniform,
            ArrivalModel::Poisson,
            ArrivalModel::OnOff { mean_on_ns: 200_000, mean_off_ns: 200_000 },
        ] {
            let mut gen = ArrivalGen::new(model, 1_000_000, DetRng::seed_from_u64(11));
            let n = 20_000;
            let mut last = 0;
            for _ in 0..n {
                let t = gen.next_ns();
                assert!(t >= last, "timestamps non-decreasing under {model:?}");
                last = t;
            }
            // 1M pps for 20k packets ≈ 20 ms; allow 25% slack for the
            // bursty model's variance.
            let expected = 20_000_000.0;
            let err = (last as f64 - expected).abs() / expected;
            assert!(err < 0.25, "{model:?}: span {last} vs expected {expected}, err {err:.3}");
        }
    }

    #[test]
    fn onoff_actually_bursts() {
        let mut gen = ArrivalGen::new(
            ArrivalModel::OnOff { mean_on_ns: 100_000, mean_off_ns: 900_000 },
            100_000,
            DetRng::seed_from_u64(5),
        );
        let times: Vec<u64> = (0..2_000).map(|_| gen.next_ns()).collect();
        let gaps: Vec<u64> = times.windows(2).map(|w| w[1] - w[0]).collect();
        let mean = gaps.iter().sum::<u64>() as f64 / gaps.len() as f64;
        let bursty_gaps = gaps.iter().filter(|&&g| (g as f64) < mean / 5.0).count();
        assert!(
            bursty_gaps > gaps.len() / 3,
            "in-burst gaps must be far below the mean: {bursty_gaps}/{}",
            gaps.len()
        );
    }
}

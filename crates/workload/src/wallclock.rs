//! Wall-clock measurement: real-time paced injection into the threaded
//! [`Dataplane`], measured (not modeled) sustained throughput, and honest
//! accounting on oversubscribed hosts.
//!
//! The modeled engine ([`crate::openloop`]) prices every packet with the
//! [`dip_sim::TofinoModel`] pipeline cost and replays arrivals in virtual
//! time — deterministic, but its MST is a statement about the *model*:
//! every worker count reports the same number because virtual servers
//! scale for free. This module is the other half of the methodology
//! (DESIGN.md §15): packets are injected on the real clock, workers run
//! on real cores, and throughput is what the registry counted per second
//! of wall time.
//!
//! Three drivers share the machinery:
//!
//! * [`run_wallclock_finite`] — paced injection of a finite trace under
//!   lossless [`Backpressure::Block`], drained to completion. The only
//!   mode where the accounting identity (`forwarded + consumed + drops
//!   == injected`) is exact, so it is what the identity and determinism
//!   tests drive;
//! * [`run_wallclock_paced`] — open-loop rate offering under
//!   [`Backpressure::Drop`]: absolute per-packet deadlines, catch-up
//!   bursts when the injector falls behind, ring-full drops counted
//!   through the shared taxonomy, and a warmup window before the
//!   measured window. Injection never stalls on the device — the
//!   open-loop contract;
//! * [`measure_capacity`] — saturation probing under `Block`: inject as
//!   fast as the rings accept and read each worker's throughput against
//!   its *thread CPU time* ([`dip_dataplane::ThreadCpuProbe`]).
//!
//! ## Wall vs capacity — the oversubscription problem
//!
//! `wall_pps` divides packets by wall seconds. On a host with fewer
//! cores than threads (workers + dispatcher) that measures the host, not
//! the software: adding workers cannot raise it, because they time-slice
//! one core. `capacity_pps` divides each worker's packets by the CPU
//! seconds its thread actually ran, then sums — the rate the same binary
//! sustains given one core per worker, and the statistic in which lock
//! contention, shared cache lines, or allocation storms still show up as
//! sub-linear scaling. When every worker owns a core the two agree; the
//! reports carry both plus [`host_cpus`] so readers can tell which one
//! is authoritative ([`WallTrial::authority`]).

use crate::churn::{ChurnGen, ChurnSpec};
use crate::trace::{TrafficClass, WorkloadSpec, INGRESS_PORT};
use dip_dataplane::{Backpressure, Dataplane, DataplaneConfig};
use dip_telemetry::Snapshot;
use std::time::{Duration, Instant};

/// Largest injection burst between deadline checks, so catch-up after a
/// scheduling hiccup cannot monopolize the dispatcher for milliseconds.
const MAX_BURST: u64 = 1024;

/// Restamp counters start here — far above the trace generator's
/// distinctness counter, so recycled NDN interests never collide with
/// first-cycle nonces.
const RESTAMP_BASE: u64 = 1 << 32;

/// Logical CPUs available to this process (affinity-aware).
pub fn host_cpus() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Wall-clock engine knobs.
#[derive(Debug, Clone)]
pub struct WallClockConfig {
    /// Worker threads.
    pub workers: usize,
    /// Packets per execution batch.
    pub batch_size: usize,
    /// Per-worker ring capacity.
    pub ring_capacity: usize,
    /// Warmup before the measured window (caches, buffer pool, branch
    /// predictors; excluded from every reported number).
    pub warmup: Duration,
    /// The measured window.
    pub measure: Duration,
    /// Pre-generated packets cycled by the paced/saturation drivers.
    pub pool_size: usize,
    /// When set, a route-update storm runs on the wall clock alongside
    /// injection (paced/saturation) or on trace virtual time (finite).
    pub churn: Option<ChurnSpec>,
}

impl Default for WallClockConfig {
    fn default() -> Self {
        WallClockConfig {
            workers: 1,
            batch_size: 32,
            ring_capacity: 1024,
            warmup: Duration::from_millis(50),
            measure: Duration::from_millis(200),
            pool_size: 8192,
            churn: None,
        }
    }
}

/// One worker's slice of a measured window.
#[derive(Debug, Clone)]
pub struct WorkerWindow {
    /// Packets this worker executed inside the window.
    pub processed: u64,
    /// CPU nanoseconds its thread ran inside the window (`None` when the
    /// host exposes no per-thread clock).
    pub cpu_ns: Option<u64>,
    /// `processed / cpu seconds` (falls back to the wall rate without a
    /// CPU clock).
    pub capacity_pps: f64,
    /// Mean packets per executed batch over the whole run so far — the
    /// batching-efficiency telemetry the scaling sweep commits.
    pub mean_batch_fill: f64,
    /// Ring occupancy sampled at the window's end.
    pub ring_occupancy: usize,
}

/// What one wall-clock measurement window observed.
#[derive(Debug, Clone)]
pub struct WallTrial {
    /// The offered rate (0 for saturation probing).
    pub offered_pps: u64,
    /// Wall nanoseconds the measured window actually spanned.
    pub wall_ns: u64,
    /// Packets offered to `submit_bytes` inside the window.
    pub offered: u64,
    /// Packets the rings accepted inside the window.
    pub accepted: u64,
    /// Packets workers executed inside the window.
    pub processed: u64,
    /// Registry delta: forwarded verdicts.
    pub forwarded: u64,
    /// Registry delta: locally consumed packets.
    pub consumed: u64,
    /// Registry delta: drops, all reasons.
    pub dropped: u64,
    /// Registry delta: ring-full (`queue_full`) drops alone.
    pub queue_full: u64,
    /// `processed / wall seconds`.
    pub wall_pps: f64,
    /// Summed per-worker `processed / cpu seconds`.
    pub capacity_pps: f64,
    /// Whether every worker's CPU clock was readable (when false,
    /// `capacity_pps` degraded to wall accounting for some worker).
    pub cpu_time: bool,
    /// Logical CPUs available to the process during the run.
    pub host_cpus: usize,
    /// `submit_bytes` allocations over the whole run — bounded by buffers
    /// in flight when the recycle path works.
    pub pool_misses: u64,
    /// Per-worker telemetry.
    pub per_worker: Vec<WorkerWindow>,
    /// Route deltas the churn storm committed (0 when quiescent).
    pub churn_deltas: u64,
    /// Snapshot publications the engine picked up.
    pub churn_epoch_swaps: u64,
}

impl WallTrial {
    /// Fraction of offered packets dropped inside the window.
    pub fn drop_frac(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.dropped as f64 / self.offered as f64
        }
    }

    /// Whether threads outnumber cores (workers + the dispatcher against
    /// [`WallTrial::host_cpus`]).
    pub fn oversubscribed(&self) -> bool {
        self.per_worker.len() + 1 > self.host_cpus
    }

    /// Which throughput number is authoritative on this host: `"wall"`
    /// when every thread had a core, `"capacity"` when threads
    /// time-sliced (wall throughput then measures the host, not the
    /// software — DESIGN.md §15).
    pub fn authority(&self) -> &'static str {
        if self.oversubscribed() && self.cpu_time {
            "capacity"
        } else {
            "wall"
        }
    }

    /// The authoritative sustained throughput per [`WallTrial::authority`].
    pub fn sustained_pps(&self) -> f64 {
        if self.authority() == "capacity" {
            self.capacity_pps
        } else {
            self.wall_pps
        }
    }
}

/// The finite lossless run's report — the only wall-clock mode where the
/// accounting identity is exact (nothing is in flight at the end).
#[derive(Debug, Clone)]
pub struct WallClockReport {
    /// Packets injected (all accepted; `Block` never drops at the ring).
    pub injected: u64,
    /// Forwarded verdicts.
    pub forwarded: u64,
    /// Locally consumed packets.
    pub consumed: u64,
    /// Drops, all reasons.
    pub dropped: u64,
    /// Ring-full drops (must be 0 under `Block`).
    pub queue_full: u64,
    /// Whether `forwarded + consumed + dropped == injected`.
    pub identity_holds: bool,
    /// Wall nanoseconds from first injection to full drain.
    pub wall_ns: u64,
    /// `submit_bytes` allocations — bounded by buffers in flight.
    pub pool_misses: u64,
    /// Route deltas the churn storm committed.
    pub churn_deltas: u64,
    /// Snapshot publications the engine picked up.
    pub churn_epoch_swaps: u64,
}

/// A packet pool the paced drivers cycle through.
struct Pool {
    packets: Vec<(TrafficClass, Vec<u8>)>,
    restamp: u64,
}

impl Pool {
    fn new(spec: &WorkloadSpec, size: usize) -> Pool {
        let trace = spec.generate(1_000_000, size.max(1));
        Pool {
            packets: trace.packets.into_iter().map(|p| (p.class, p.bytes)).collect(),
            restamp: RESTAMP_BASE,
        }
    }

    /// The packet for injection number `idx`, cycling the pool. Recycled
    /// NDN interests get a fresh nonce (the trace generator's payload
    /// tail feeds the nonce hash), so repeats aggregate in the PIT
    /// instead of tripping duplicate suppression. MAC-verified classes
    /// (OPT, NDN+OPT) cannot be restamped and are left byte-identical —
    /// callers that cycle those classes must accept replay semantics.
    fn packet(&mut self, idx: u64) -> &[u8] {
        let len = self.packets.len() as u64;
        let i = (idx % len) as usize;
        let (class, bytes) = &mut self.packets[i];
        if idx >= len && *class == TrafficClass::Ndn {
            self.restamp += 1;
            let n = bytes.len();
            bytes[n - 8..].copy_from_slice(&self.restamp.to_be_bytes());
        }
        bytes
    }
}

fn dataplane_config(cfg: &WallClockConfig, backpressure: Backpressure) -> DataplaneConfig {
    DataplaneConfig {
        workers: cfg.workers.max(1),
        batch_size: cfg.batch_size.max(1),
        ring_capacity: cfg.ring_capacity,
        backpressure,
        ..Default::default()
    }
}

/// Identity terms from a registry snapshot.
fn account(snap: &Snapshot) -> (u64, u64, u64, u64) {
    (
        snap.sum_where("dip_packets_total", &[("outcome", "forwarded")]),
        snap.sum_where("dip_packets_total", &[("outcome", "consumed")]),
        snap.get("dip_drops_total"),
        snap.sum_where("dip_drops_total", &[("reason", "queue_full")]),
    )
}

/// Everything sampled at a window boundary.
struct Mark {
    snap: Snapshot,
    offered: u64,
    accepted: u64,
    per_worker_processed: Vec<u64>,
    per_worker_cpu: Vec<Option<u64>>,
    at: Instant,
}

fn mark(dp: &Dataplane, offered: u64) -> Mark {
    let per_worker_processed = (0..dp.workers()).map(|i| dp.worker_processed(i)).collect();
    let per_worker_cpu = (0..dp.workers()).map(|i| dp.worker_cpu_ns(i)).collect();
    let snap = dp.metrics_snapshot();
    let (f, c, d, _) = account(&snap);
    Mark {
        snap,
        offered,
        accepted: f + c + d,
        per_worker_processed,
        per_worker_cpu,
        at: Instant::now(),
    }
}

fn window(
    dp: &Dataplane,
    offered_pps: u64,
    start: &Mark,
    end: &Mark,
    churn: Option<&ChurnGen>,
) -> WallTrial {
    let wall_ns = end.at.duration_since(start.at).as_nanos() as u64;
    let wall_s = (wall_ns as f64 / 1e9).max(1e-9);
    let (f0, c0, d0, q0) = account(&start.snap);
    let (f1, c1, d1, q1) = account(&end.snap);
    let mut per_worker = Vec::with_capacity(dp.workers());
    let mut cpu_time = true;
    let mut capacity_pps = 0.0;
    let mut processed = 0u64;
    let occupancy = dp.ring_occupancy();
    for (i, &occ) in occupancy.iter().enumerate().take(dp.workers()) {
        let p = end.per_worker_processed[i] - start.per_worker_processed[i];
        processed += p;
        let cpu_ns = match (start.per_worker_cpu[i], end.per_worker_cpu[i]) {
            (Some(a), Some(b)) if b >= a => Some(b - a),
            _ => None,
        };
        let capacity = match cpu_ns {
            Some(ns) if ns > 0 => p as f64 / (ns as f64 / 1e9),
            Some(_) => 0.0,
            None => {
                cpu_time = false;
                p as f64 / wall_s
            }
        };
        capacity_pps += capacity;
        let w = i.to_string();
        let labels: [(&str, &str); 1] = [("worker", w.as_str())];
        let fill = dp.registry().histogram(
            "dip_worker_batch_fill",
            "Packets per executed batch",
            &labels,
            &[],
        );
        per_worker.push(WorkerWindow {
            processed: p,
            cpu_ns,
            capacity_pps: capacity,
            mean_batch_fill: fill.mean(),
            ring_occupancy: occ,
        });
    }
    WallTrial {
        offered_pps,
        wall_ns,
        offered: end.offered - start.offered,
        accepted: end.accepted - start.accepted,
        processed,
        forwarded: f1 - f0,
        consumed: c1 - c0,
        dropped: d1 - d0,
        queue_full: q1 - q0,
        wall_pps: processed as f64 / wall_s,
        capacity_pps,
        cpu_time,
        host_cpus: host_cpus(),
        pool_misses: dp.pool_misses(),
        per_worker,
        churn_deltas: churn.map_or(0, |g| g.deltas()),
        churn_epoch_swaps: churn.map_or(0, |g| g.stats().epoch_swaps),
    }
}

/// The shared paced/saturation injection loop: cycles the pool until
/// `deadline`, pacing to `rate_pps` (`None` = as fast as the rings
/// accept), polling churn on wall-elapsed nanoseconds. Returns the
/// updated injection counter.
fn drive(
    dp: &mut Dataplane,
    pool: &mut Pool,
    churn: &mut Option<ChurnGen>,
    rate_pps: Option<u64>,
    t0: Instant,
    deadline: Instant,
    mut idx: u64,
) -> u64 {
    let interval_ns = rate_pps.map(|r| 1e9 / r.max(1) as f64);
    loop {
        let now = Instant::now();
        if now >= deadline {
            return idx;
        }
        let elapsed_ns = now.duration_since(t0).as_nanos() as u64;
        if let Some(gen) = churn {
            if let Some(snap) = gen.poll(elapsed_ns) {
                dp.publish_routes(snap);
                gen.note_epoch_swap();
            }
        }
        // Absolute deadlines: injection `i` is due at `t0 + i*interval`.
        // Falling behind produces a catch-up burst (bounded, so churn and
        // the clock are still consulted at a sane cadence); getting ahead
        // yields the core to the workers — on oversubscribed hosts the
        // injector sleeping IS the workers running.
        let due = match interval_ns {
            Some(int) => (elapsed_ns as f64 / int) as u64 + 1,
            None => idx + MAX_BURST,
        };
        let burst = due.saturating_sub(idx).min(MAX_BURST);
        if burst == 0 {
            let int = interval_ns.expect("unpaced injection is never ahead of schedule");
            let next_due_ns = (idx as f64 * int) as u64;
            let gap = Duration::from_nanos(next_due_ns.saturating_sub(elapsed_ns));
            if gap > Duration::from_micros(100) {
                std::thread::sleep(gap / 2);
            } else {
                std::thread::yield_now();
            }
            continue;
        }
        for _ in 0..burst {
            let bytes = pool.packet(idx);
            let now_ns = t0.elapsed().as_nanos() as u64;
            dp.submit_bytes(bytes, INGRESS_PORT, now_ns);
            idx += 1;
        }
    }
}

fn start_engine(
    spec: &WorkloadSpec,
    cfg: &WallClockConfig,
    backpressure: Backpressure,
) -> (Dataplane, Option<ChurnGen>) {
    let dp = Dataplane::start(dataplane_config(cfg, backpressure), |i| spec.build_router(i as u64));
    let mut churn = cfg.churn.as_ref().map(|c| ChurnGen::new(spec, c));
    if let Some(gen) = &mut churn {
        dp.publish_routes(gen.initial_snapshot());
        gen.note_epoch_swap();
    }
    (dp, churn)
}

/// Offers `rate_pps` on the wall clock under [`Backpressure::Drop`] for
/// `cfg.warmup + cfg.measure`, reporting only the measured window.
pub fn run_wallclock_paced(spec: &WorkloadSpec, rate_pps: u64, cfg: &WallClockConfig) -> WallTrial {
    let (mut dp, mut churn) = start_engine(spec, cfg, Backpressure::Drop);
    let mut pool = Pool::new(spec, cfg.pool_size);
    let t0 = Instant::now();
    let idx = drive(&mut dp, &mut pool, &mut churn, Some(rate_pps), t0, t0 + cfg.warmup, 0);
    let start = mark(&dp, idx);
    let idx =
        drive(&mut dp, &mut pool, &mut churn, Some(rate_pps), t0, start.at + cfg.measure, idx);
    let end = mark(&dp, idx);
    let trial = window(&dp, rate_pps, &start, &end, churn.as_ref());
    dp.shutdown();
    trial
}

/// Saturation probe: injects as fast as the rings accept under
/// [`Backpressure::Block`] and reports the measured window — the run the
/// per-worker capacity numbers come from.
pub fn measure_capacity(spec: &WorkloadSpec, cfg: &WallClockConfig) -> WallTrial {
    let (mut dp, mut churn) = start_engine(spec, cfg, Backpressure::Block);
    let mut pool = Pool::new(spec, cfg.pool_size);
    let t0 = Instant::now();
    let idx = drive(&mut dp, &mut pool, &mut churn, None, t0, t0 + cfg.warmup, 0);
    let start = mark(&dp, idx);
    let idx = drive(&mut dp, &mut pool, &mut churn, None, t0, start.at + cfg.measure, idx);
    let end = mark(&dp, idx);
    let trial = window(&dp, 0, &start, &end, churn.as_ref());
    dp.shutdown();
    trial
}

/// Paced injection of `count` packets from `spec` at `rate_pps` under
/// lossless [`Backpressure::Block`], drained to completion — the exact
/// accounting mode. Churn (when configured) polls on the packets' trace
/// virtual timestamps, mirroring the modeled engine, so the storm's
/// delta sequence is deterministic per seed.
pub fn run_wallclock_finite(
    spec: &WorkloadSpec,
    rate_pps: u64,
    count: usize,
    cfg: &WallClockConfig,
) -> WallClockReport {
    let trace = spec.generate(rate_pps, count);
    let (mut dp, mut churn) = start_engine(spec, cfg, Backpressure::Block);
    let t0 = Instant::now();
    let interval_ns = 1e9 / rate_pps.max(1) as f64;
    for (i, p) in trace.packets.iter().enumerate() {
        if let Some(gen) = &mut churn {
            if let Some(snap) = gen.poll(p.at_ns) {
                dp.publish_routes(snap);
                gen.note_epoch_swap();
            }
        }
        // Pace on the wall clock, but never stall behind schedule: the
        // finite mode is about exact accounting, not rate fidelity.
        let due_ns = (i as f64 * interval_ns) as u64;
        loop {
            let elapsed = t0.elapsed().as_nanos() as u64;
            if elapsed >= due_ns {
                break;
            }
            std::thread::yield_now();
        }
        dp.submit_bytes(&p.bytes, INGRESS_PORT, p.at_ns);
    }
    let pool_misses = dp.pool_misses();
    let report = dp.shutdown();
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let snap = report.registry.snapshot();
    let (forwarded, consumed, dropped, queue_full) = account(&snap);
    let injected = trace.len() as u64;
    WallClockReport {
        injected,
        forwarded,
        consumed,
        dropped,
        queue_full,
        identity_holds: forwarded + consumed + dropped == injected,
        wall_ns,
        pool_misses,
        churn_deltas: churn.as_ref().map_or(0, |g| g.deltas()),
        churn_epoch_swaps: churn.as_ref().map_or(0, |g| g.stats().epoch_swaps),
    }
}

/// Wall-clock MST search knobs.
#[derive(Debug, Clone)]
pub struct WallMstConfig {
    /// The engine configuration every trial runs.
    pub wallclock: WallClockConfig,
    /// Maximum tolerated drop fraction inside the measured window.
    pub max_drop_frac: f64,
    /// Lower bracket (assumed sustainable).
    pub lo_pps: u64,
    /// Upper bracket (assumed unsustainable).
    pub hi_pps: u64,
    /// Bisection iteration cap.
    pub max_iters: usize,
}

impl Default for WallMstConfig {
    fn default() -> Self {
        WallMstConfig {
            wallclock: WallClockConfig::default(),
            max_drop_frac: 0.005,
            lo_pps: 10_000,
            hi_pps: 50_000_000,
            max_iters: 10,
        }
    }
}

/// The wall-clock MST search outcome.
#[derive(Debug, Clone)]
pub struct WallMstResult {
    /// Highest offered rate whose measured window met the drop SLO
    /// (0 when even `lo_pps` failed).
    pub mst_pps: u64,
    /// Every trial, in execution order.
    pub trials: Vec<WallTrial>,
}

/// Bisects offered rate for the highest drop-SLO-passing value, each
/// trial a real [`run_wallclock_paced`] window. Wall measurements are
/// noisy, so the bracket tolerance is coarse (`lo/16`, ~6%) — tighter
/// bisection would chase scheduler jitter, not the device.
pub fn find_mst_wallclock(spec: &WorkloadSpec, cfg: &WallMstConfig) -> WallMstResult {
    let mut trials: Vec<WallTrial> = Vec::new();
    let run = |rate: u64, trials: &mut Vec<WallTrial>| -> bool {
        let trial = run_wallclock_paced(spec, rate, &cfg.wallclock);
        let passed = trial.drop_frac() <= cfg.max_drop_frac;
        trials.push(trial);
        passed
    };
    let mut lo = cfg.lo_pps.max(1);
    let mut hi = cfg.hi_pps.max(lo + 1);
    if !run(lo, &mut trials) {
        return WallMstResult { mst_pps: 0, trials };
    }
    if run(hi, &mut trials) {
        return WallMstResult { mst_pps: hi, trials };
    }
    let mut iters = 0;
    while hi - lo > (lo / 16).max(1) && iters < cfg.max_iters {
        let mid = lo + (hi - lo) / 2;
        if run(mid, &mut trials) {
            lo = mid;
        } else {
            hi = mid;
        }
        iters += 1;
    }
    WallMstResult { mst_pps: lo, trials }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec(seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            seed,
            table_size: 300,
            catalog_size: 64,
            pit_preseed: 512,
            ..Default::default()
        }
    }

    fn quick_cfg(workers: usize) -> WallClockConfig {
        WallClockConfig {
            workers,
            warmup: Duration::from_millis(10),
            measure: Duration::from_millis(40),
            pool_size: 1024,
            ..Default::default()
        }
    }

    #[test]
    fn finite_run_holds_identity_and_loses_nothing() {
        for workers in [1, 2, 4] {
            let r = run_wallclock_finite(&small_spec(3), 500_000, 400, &quick_cfg(workers));
            assert!(r.identity_holds, "workers={workers}: {r:?}");
            assert_eq!(r.injected, 400);
            assert_eq!(r.queue_full, 0, "Block never drops at the ring");
        }
    }

    #[test]
    fn paced_window_accounts_and_measures() {
        let t = run_wallclock_paced(&small_spec(5), 200_000, &quick_cfg(2));
        assert!(t.offered > 0, "the injector offered packets: {t:?}");
        assert!(t.wall_pps > 0.0);
        assert!(t.capacity_pps > 0.0);
        assert_eq!(t.per_worker.len(), 2);
        assert_eq!(t.host_cpus, host_cpus());
        assert!(
            t.forwarded + t.consumed + t.dropped <= t.offered + 2 * 1024,
            "window deltas bounded by offered plus in-flight slack: {t:?}"
        );
    }

    #[test]
    fn saturation_probe_reports_capacity_per_worker() {
        let t = measure_capacity(&small_spec(7), &quick_cfg(2));
        assert!(t.processed > 0, "saturation processed packets: {t:?}");
        assert!(t.capacity_pps > 0.0);
        #[cfg(target_os = "linux")]
        assert!(t.cpu_time, "Linux must expose per-thread CPU clocks");
        for w in &t.per_worker {
            assert!(w.mean_batch_fill >= 1.0, "executed batches hold ≥1 packet: {w:?}");
        }
    }
}

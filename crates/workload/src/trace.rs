//! From seed to packets: traffic classes, protocol mixes, and the
//! deterministic trace generator.
//!
//! A [`WorkloadSpec`] is the complete, serializable-by-hand description
//! of an experiment's offered load: one seed, a protocol [`Mix`], an
//! arrival model, and the catalog/flow/table shape parameters. Two draws
//! matter and they are kept on **separate RNG streams**: packet *content*
//! (classes, names, flows — seeded from `seed ^ CONTENT_STREAM`) and
//! arrival *times* (seeded from `seed ^ TIME_STREAM`). Changing the
//! offered rate therefore rescales timestamps while the packet bytes stay
//! identical — which is what lets the MST search re-offer the same
//! packets at different rates and attribute every outcome change to load,
//! not to different traffic.

use crate::models::{ArrivalGen, ArrivalModel, BoundedPareto, Zipf};
use dip_core::DipRouter;
use dip_crypto::DetRng;
use dip_fnops::context::MacChoice;
use dip_protocols::opt::OptSession;
use dip_protocols::{ip, ndn, ndn_opt, xia};
use dip_tables::fib::NextHop;
use dip_tables::{Pit, XiaNextHop};
use dip_wire::ipv4::Ipv4Addr;
use dip_wire::ipv6::Ipv6Addr;
use dip_wire::ndn::Name;
use dip_wire::xia::{Dag, DagNode, Xid, XidType};

/// Stream separator for content draws.
const CONTENT_STREAM: u64 = 0x636f_6e74_656e_7431;
/// Stream separator for arrival-time draws.
const TIME_STREAM: u64 = 0x7469_6d65_7374_7231;
/// The secret shared by every generated router (and the OPT session).
const ROUTER_SECRET: [u8; 16] = [0x42; 16];
/// PIT TTL for generated routers: effectively forever in virtual time,
/// far from `u64` overflow when added to trace timestamps.
const PIT_TTL: u64 = 1 << 62;
/// The ingress port every open-loop packet arrives on.
pub const INGRESS_PORT: u32 = 7;

/// One of the five paper protocols, or the NDN+OPT composition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// IPv4 semantics over DIP (DIP-32).
    Ipv4,
    /// IPv6 semantics over DIP (DIP-128).
    Ipv6,
    /// NDN interests over a Zipf-popular catalog.
    Ndn,
    /// OPT source/path-authenticated session packets.
    Opt,
    /// XIA DAG packets (CID sink with AD fallback).
    Xia,
    /// NDN+OPT secure content delivery (data packets consuming PIT state).
    NdnOpt,
}

impl TrafficClass {
    /// Every class, in stable order.
    pub const ALL: [TrafficClass; 6] = [
        TrafficClass::Ipv4,
        TrafficClass::Ipv6,
        TrafficClass::Ndn,
        TrafficClass::Opt,
        TrafficClass::Xia,
        TrafficClass::NdnOpt,
    ];

    /// The snake_case label used in JSON lines and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            TrafficClass::Ipv4 => "ipv4",
            TrafficClass::Ipv6 => "ipv6",
            TrafficClass::Ndn => "ndn",
            TrafficClass::Opt => "opt",
            TrafficClass::Xia => "xia",
            TrafficClass::NdnOpt => "ndn_opt",
        }
    }

    /// Parses a CLI spelling (`ipv4`/`v4`, `ndn_opt`/`ndn+opt`, ...).
    pub fn parse(s: &str) -> Option<TrafficClass> {
        match s.trim().to_ascii_lowercase().as_str() {
            "ipv4" | "v4" | "dip32" => Some(TrafficClass::Ipv4),
            "ipv6" | "v6" | "dip128" => Some(TrafficClass::Ipv6),
            "ndn" => Some(TrafficClass::Ndn),
            "opt" => Some(TrafficClass::Opt),
            "xia" => Some(TrafficClass::Xia),
            "ndn_opt" | "ndn+opt" | "ndnopt" => Some(TrafficClass::NdnOpt),
            _ => None,
        }
    }

    /// Stable one-byte tag for trace hashing.
    fn tag(self) -> u8 {
        TrafficClass::ALL.iter().position(|c| *c == self).expect("class in ALL") as u8
    }
}

/// A weighted protocol mix.
#[derive(Debug, Clone)]
pub struct Mix {
    entries: Vec<(TrafficClass, u32)>,
    total: u32,
}

impl Mix {
    /// A mix from `(class, weight)` entries (zero weights are dropped;
    /// an empty result falls back to [`Mix::all`]).
    pub fn new(entries: Vec<(TrafficClass, u32)>) -> Self {
        let entries: Vec<_> = entries.into_iter().filter(|(_, w)| *w > 0).collect();
        if entries.is_empty() {
            return Mix::all();
        }
        let total = entries.iter().map(|(_, w)| w).sum();
        Mix { entries, total }
    }

    /// Only `class`.
    pub fn single(class: TrafficClass) -> Self {
        Mix { entries: vec![(class, 1)], total: 1 }
    }

    /// Every class at equal weight — the five-protocol (+ NDN+OPT)
    /// unification mix.
    pub fn all() -> Self {
        Mix { entries: TrafficClass::ALL.iter().map(|c| (*c, 1)).collect(), total: 6 }
    }

    /// The classes present.
    pub fn classes(&self) -> Vec<TrafficClass> {
        self.entries.iter().map(|(c, _)| *c).collect()
    }

    /// Weighted draw of one class.
    pub fn sample(&self, rng: &mut DetRng) -> TrafficClass {
        let mut ticket = rng.gen_index(self.total as usize) as u32;
        for (class, w) in &self.entries {
            if ticket < *w {
                return *class;
            }
            ticket -= w;
        }
        self.entries[self.entries.len() - 1].0
    }

    /// A display label: `ipv4:1+ndn:2`.
    pub fn label(&self) -> String {
        self.entries
            .iter()
            .map(|(c, w)| format!("{}:{}", c.label(), w))
            .collect::<Vec<_>>()
            .join("+")
    }
}

/// The complete description of an offered workload (rate excluded — the
/// rate is the MST search's variable).
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Master seed; all determinism flows from here.
    pub seed: u64,
    /// Protocol mix.
    pub mix: Mix,
    /// Arrival process.
    pub arrival: ArrivalModel,
    /// Content-catalog size (NDN names, XIA CIDs).
    pub catalog_size: usize,
    /// Zipf exponent over the catalog.
    pub zipf_s: f64,
    /// Flow-size distribution (packets per IPv4/IPv6 flow).
    pub flow_sizes: BoundedPareto,
    /// Concurrently active flow slots per IP family.
    pub active_flows: usize,
    /// Payload bytes per packet (at least 8; the tail carries the
    /// distinctness counter).
    pub payload_len: usize,
    /// Synthetic routes per FIB family in generated routers
    /// (CRAM-style large tables).
    pub table_size: usize,
    /// Pre-seeded PIT exchanges for NDN+OPT data (the open-loop driver
    /// plays the producer side; traces reuse exchange names modulo this,
    /// so keep it above the per-trial packet count).
    pub pit_preseed: usize,
    /// Which block cipher backs `F_MAC`/`F_mark` on generated routers.
    /// Service-time calibration reads this off the built router, so an
    /// AES-configured spec prices MAC-verifying classes with the resubmit
    /// pass while plain forwarding classes stay untouched.
    pub mac_choice: MacChoice,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            seed: 0,
            mix: Mix::all(),
            arrival: ArrivalModel::Poisson,
            catalog_size: 512,
            zipf_s: 1.1,
            flow_sizes: BoundedPareto::new(1.2, 1, 1 << 12),
            active_flows: 64,
            payload_len: 64,
            table_size: 10_000,
            pit_preseed: 1 << 14,
            mac_choice: MacChoice::default(),
        }
    }
}

/// One timestamped packet of a generated trace.
#[derive(Debug, Clone)]
pub struct TracePacket {
    /// Virtual arrival time in nanoseconds.
    pub at_ns: u64,
    /// The class that produced it.
    pub class: TrafficClass,
    /// Wire bytes.
    pub bytes: Vec<u8>,
}

/// A generated trace: packets in non-decreasing arrival order.
#[derive(Debug, Clone)]
pub struct Trace {
    /// The packets.
    pub packets: Vec<TracePacket>,
    /// The rate the timestamps were drawn for.
    pub rate_pps: u64,
}

/// FNV-1a 64-bit.
fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(0x100_0000_01b3);
    }
}

impl Trace {
    /// Number of packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Virtual duration (timestamp of the last packet).
    pub fn duration_ns(&self) -> u64 {
        self.packets.last().map_or(0, |p| p.at_ns)
    }

    /// FNV-1a over timestamps, classes, and bytes — the reproducibility
    /// fingerprint (`same seed + same rate ⇒ same hash`).
    pub fn hash(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325;
        for p in &self.packets {
            fnv1a(&mut h, &p.at_ns.to_be_bytes());
            fnv1a(&mut h, &[p.class.tag()]);
            fnv1a(&mut h, &p.bytes);
        }
        h
    }

    /// FNV-1a over classes and bytes only — rate-independent, so every
    /// trial of one MST search shares it (`same seed ⇒ same hash`).
    pub fn content_hash(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325;
        for p in &self.packets {
            fnv1a(&mut h, &[p.class.tag()]);
            fnv1a(&mut h, &p.bytes);
        }
        h
    }
}

/// An active IP flow slot.
#[derive(Debug, Clone, Copy)]
struct FlowSlot {
    dst_low: u64,
    remaining: u64,
}

/// The stateful generator behind [`WorkloadSpec::generate`]. Public so
/// the open-loop driver can calibrate per-class service times with
/// [`TraceGen::packet_for`] on the identical packet shapes.
pub(crate) struct TraceGen {
    spec: WorkloadSpec,
    rng: DetRng,
    zipf: Zipf,
    v4_flows: Vec<FlowSlot>,
    v6_flows: Vec<FlowSlot>,
    session: OptSession,
    counter: u64,
    ndn_opt_seq: u64,
}

impl TraceGen {
    pub(crate) fn new(spec: &WorkloadSpec) -> TraceGen {
        TraceGen {
            spec: spec.clone(),
            rng: DetRng::seed_from_u64(spec.seed ^ CONTENT_STREAM),
            zipf: Zipf::new(spec.catalog_size, spec.zipf_s),
            v4_flows: vec![FlowSlot { dst_low: 0, remaining: 0 }; spec.active_flows.max(1)],
            v6_flows: vec![FlowSlot { dst_low: 0, remaining: 0 }; spec.active_flows.max(1)],
            session: opt_session(),
            counter: 0,
            ndn_opt_seq: 0,
        }
    }

    /// A fresh payload with the distinctness counter stamped in the tail
    /// (unique bytes ⇒ unique NDN nonces ⇒ repeats aggregate instead of
    /// tripping duplicate suppression).
    fn payload(&mut self) -> Vec<u8> {
        self.counter += 1;
        let len = self.spec.payload_len.max(8);
        let mut p = vec![0u8; len];
        let n = p.len();
        p[n - 8..].copy_from_slice(&self.counter.to_be_bytes());
        p
    }

    /// The next packet of `class`.
    pub(crate) fn packet_for(&mut self, class: TrafficClass) -> Vec<u8> {
        let payload = self.payload();
        match class {
            TrafficClass::Ipv4 => {
                let slot = self.rng.gen_index(self.v4_flows.len());
                if self.v4_flows[slot].remaining == 0 {
                    self.v4_flows[slot] = FlowSlot {
                        dst_low: u64::from(self.rng.next_u32() & 0x00ff_ffff),
                        remaining: self.spec.flow_sizes.sample(&mut self.rng),
                    };
                }
                self.v4_flows[slot].remaining -= 1;
                let dst = Ipv4Addr::from_u32(10 << 24 | self.v4_flows[slot].dst_low as u32);
                ip::dip32_packet(dst, Ipv4Addr::new(192, 168, 0, 1), 64)
                    .to_bytes(&payload)
                    .expect("well-formed dip32")
            }
            TrafficClass::Ipv6 => {
                let slot = self.rng.gen_index(self.v6_flows.len());
                if self.v6_flows[slot].remaining == 0 {
                    self.v6_flows[slot] = FlowSlot {
                        dst_low: self.rng.next_u64(),
                        remaining: self.spec.flow_sizes.sample(&mut self.rng),
                    };
                }
                self.v6_flows[slot].remaining -= 1;
                let dst =
                    Ipv6Addr::from_u128((0xfdaau128 << 112) | self.v6_flows[slot].dst_low as u128);
                ip::dip128_packet(dst, Ipv6Addr::new([0xfd00, 0, 0, 0, 0, 0, 0, 1]), 64)
                    .to_bytes(&payload)
                    .expect("well-formed dip128")
            }
            TrafficClass::Ndn => {
                let name = catalog_name(self.zipf.sample(&mut self.rng));
                ndn::interest(&name, 64).to_bytes(&payload).expect("well-formed interest")
            }
            TrafficClass::Opt => self
                .session
                .packet(&payload, self.counter as u32, 64)
                .to_bytes(&payload)
                .expect("well-formed opt"),
            TrafficClass::Xia => {
                let idx = self.zipf.sample(&mut self.rng);
                let dag = Dag::direct_with_fallback(
                    DagNode::sink(XidType::Cid, catalog_cid(idx)),
                    wl_ad(),
                    wl_hid(),
                )
                .expect("well-formed dag");
                xia::packet(&dag, 64).to_bytes(&payload).expect("well-formed xia")
            }
            TrafficClass::NdnOpt => {
                // Data packets playing the producer side of pre-recorded
                // exchanges: each consumes the PIT entry `build_router`
                // seeded for its exchange name.
                let idx = self.ndn_opt_seq % self.spec.pit_preseed.max(1) as u64;
                self.ndn_opt_seq += 1;
                let name = exchange_name(idx as usize);
                ndn_opt::data(&self.session, &name, &payload, self.counter as u32, 64)
                    .to_bytes(&payload)
                    .expect("well-formed ndn+opt data")
            }
        }
    }

    fn next(&mut self) -> (TrafficClass, Vec<u8>) {
        let class = self.spec.mix.sample(&mut self.rng);
        let bytes = self.packet_for(class);
        (class, bytes)
    }
}

/// The OPT session every generated packet and router share.
fn opt_session() -> OptSession {
    OptSession::establish([0x5a; 16], &[7; 16], &[ROUTER_SECRET])
}

/// Catalog name `i` (`/wl/cat/{i}`).
pub(crate) fn catalog_name(i: usize) -> Name {
    Name::parse(&format!("/wl/cat/{i}"))
}

/// NDN+OPT exchange name `i` (`/wl/x/{i}`).
fn exchange_name(i: usize) -> Name {
    Name::parse(&format!("/wl/x/{i}"))
}

/// Catalog CID `i`.
fn catalog_cid(i: usize) -> Xid {
    Xid::derive(format!("wl-cid-{i}").as_bytes())
}

fn wl_ad() -> Xid {
    Xid::derive(b"wl-ad")
}

fn wl_hid() -> Xid {
    Xid::derive(b"wl-hid")
}

impl WorkloadSpec {
    /// Generates `count` packets at `rate_pps`. Content draws and time
    /// draws use independent streams: the packet bytes depend only on
    /// `seed`, the timestamps on `(seed, rate_pps, arrival)`.
    pub fn generate(&self, rate_pps: u64, count: usize) -> Trace {
        let mut gen = TraceGen::new(self);
        let mut arrivals =
            ArrivalGen::new(self.arrival, rate_pps, DetRng::seed_from_u64(self.seed ^ TIME_STREAM));
        let packets = (0..count)
            .map(|_| {
                let (class, bytes) = gen.next();
                TracePacket { at_ns: arrivals.next_ns(), class, bytes }
            })
            .collect();
        Trace { packets, rate_pps }
    }

    /// A router pre-seeded with everything this spec's traces assume:
    /// covering routes for every class, `table_size` synthetic routes per
    /// FIB (the CRAM-style "large database"), the content-catalog name
    /// and CID routes (CIDs only for even indices — odd ones exercise the
    /// XIA AD fallback), and `pit_preseed` pending NDN+OPT exchanges.
    ///
    /// Open-loop engines call this once per worker; every worker gets the
    /// identical state, so flow sharding alone decides who owns a flow.
    pub fn build_router(&self, node_id: u64) -> DipRouter {
        let mut r = DipRouter::new(node_id, ROUTER_SECRET);
        r.config_mut().default_port = Some(1);
        // Workload routers run the dipopt-compiled plans; the equivalence
        // suite pins that this changes no verdict, only the cost model.
        r.config_mut().optimize = true;
        let st = r.state_mut();
        st.mac_choice = self.mac_choice;
        st.ipv4_fib.add_route(Ipv4Addr::new(10, 0, 0, 0), 8, NextHop::port(1));
        st.ipv4_fib.populate_synthetic(self.table_size, self.seed ^ 0x7634);
        st.ipv6_fib.add_route(Ipv6Addr::new([0xfdaa, 0, 0, 0, 0, 0, 0, 0]), 16, NextHop::port(2));
        st.ipv6_fib.populate_synthetic(self.table_size, self.seed ^ 0x7636);
        for i in 0..self.catalog_size {
            st.name_fib.add_route(&catalog_name(i), NextHop::port(3));
        }
        st.name_fib.populate_synthetic(self.table_size / 4, self.seed ^ 0x766e);
        st.xia.add_route(XidType::Ad, wl_ad(), XiaNextHop::Port(4));
        for i in (0..self.catalog_size).step_by(2) {
            st.xia.add_route(XidType::Cid, catalog_cid(i), XiaNextHop::Port(5));
        }
        st.pit = Pit::new(self.pit_preseed + self.catalog_size + 1024, PIT_TTL);
        for i in 0..self.pit_preseed {
            let _ = st.pit.record_interest(
                exchange_name(i).compact32(),
                INGRESS_PORT,
                u64::MAX - i as u64,
                0,
            );
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dip_core::Verdict;

    #[test]
    fn same_seed_same_bytes_any_rate() {
        let spec = WorkloadSpec { table_size: 200, pit_preseed: 64, ..Default::default() };
        let slow = spec.generate(10_000, 200);
        let fast = spec.generate(1_000_000, 200);
        assert_eq!(slow.content_hash(), fast.content_hash(), "content is rate-independent");
        assert_ne!(slow.hash(), fast.hash(), "timestamps differ across rates");
        let again = spec.generate(10_000, 200);
        assert_eq!(slow.hash(), again.hash(), "full reproducibility at equal rate");
    }

    #[test]
    fn every_class_forwards_or_consumes_through_a_seeded_router() {
        let spec = WorkloadSpec {
            table_size: 500,
            catalog_size: 64,
            pit_preseed: 256,
            ..Default::default()
        };
        let mut router = spec.build_router(0);
        for class in TrafficClass::ALL {
            let sub = WorkloadSpec { mix: Mix::single(class), ..spec.clone() };
            let trace = sub.generate(100_000, 50);
            for (i, p) in trace.packets.iter().enumerate() {
                let mut buf = p.bytes.clone();
                let (verdict, _) = router.process(&mut buf, INGRESS_PORT, p.at_ns);
                assert!(
                    !matches!(verdict, Verdict::Drop(_) | Verdict::Notify(_)),
                    "{class:?} packet {i} got {verdict:?}"
                );
            }
        }
    }

    #[test]
    fn mix_sampling_covers_all_classes() {
        let mix = Mix::all();
        let mut rng = DetRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            seen.insert(mix.sample(&mut rng).label());
        }
        assert_eq!(seen.len(), 6, "all six classes drawn: {seen:?}");
        assert_eq!(Mix::new(vec![]).classes().len(), 6, "empty mix falls back to all");
        assert_eq!(Mix::single(TrafficClass::Ndn).label(), "ndn:1");
    }

    #[test]
    fn class_labels_round_trip() {
        for c in TrafficClass::ALL {
            assert_eq!(TrafficClass::parse(c.label()), Some(c));
        }
        assert_eq!(TrafficClass::parse("ndn+opt"), Some(TrafficClass::NdnOpt));
        assert_eq!(TrafficClass::parse("bogus"), None);
    }
}

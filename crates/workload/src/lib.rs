//! # dip-workload — deterministic load generation & SLO measurement
//!
//! The ROADMAP's north star is a system that "serves heavy traffic from
//! millions of users"; this crate is the principled way to *offer* that
//! traffic and decide whether the dataplane survived it (DESIGN.md §11):
//!
//! * [`models`] — the statistical ingredients: Zipf content popularity
//!   (NDN interests concentrate on few names), bounded-Pareto flow sizes
//!   (heavy-tailed elephants and mice), and Poisson / bursty on-off
//!   (MMPP-style) arrival processes. Everything draws from the in-repo
//!   [`dip_crypto::DetRng`], so identical seeds yield byte-identical
//!   traces;
//! * [`trace`] — [`WorkloadSpec`] turns a seed, a protocol [`Mix`] over
//!   the five paper protocols (+ NDN+OPT), and a rate into a concrete
//!   [`Trace`] of timestamped packets, plus [`WorkloadSpec::build_router`]
//!   which seeds a [`dip_core::DipRouter`] with the covering routes and
//!   CRAM-scale synthetic tables the trace assumes;
//! * [`churn`] — seeded BGP-style route-update storms (flap pools,
//!   hot-set locality) committed as `dip-routes` deltas and published as
//!   tables-only snapshots while traffic runs;
//! * [`openloop`] — offers a trace at a fixed rate to the threaded
//!   [`dip_dataplane::Dataplane`] or a single-router baseline, recording
//!   per-packet latency (from a deterministic virtual-time queue model
//!   over the [`dip_sim::TofinoModel`] service times) and counting
//!   injection-side overload through the shared drop taxonomy;
//! * [`wallclock`] — the *measuring* counterpart to [`openloop`]'s
//!   model (DESIGN.md §15): real-time paced injection into the threaded
//!   dataplane, warmup-then-window registry deltas, per-worker capacity
//!   against thread CPU time, and [`wallclock::find_mst_wallclock`]
//!   bisecting on the measured drop fraction;
//! * [`closedloop`] — request/response rounds over [`dip_sim`]'s
//!   discrete-event network for NDN interest/data and NDN+OPT sessions;
//! * [`slo`] — the SLO evaluator and the max-sustainable-throughput
//!   binary search ([`slo::find_mst`]): the highest offered rate with
//!   `p99 ≤ bound` and `drop fraction ≤ bound`, validating the packet
//!   accounting identity (forwarded + consumed + drops == injected) on
//!   every trial.
//!
//! The `dipload` CLI (workspace root) and `bench/benches/workload_slo.rs`
//! print the results as `dip_bench` JSON lines.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod churn;
pub mod closedloop;
pub mod models;
pub mod openloop;
pub mod slo;
pub mod trace;
pub mod wallclock;

pub use churn::{ChurnGen, ChurnSpec};
pub use closedloop::{run_closed_loop, ClosedLoopConfig, ClosedLoopReport, ExchangeKind};
pub use models::{ArrivalGen, ArrivalModel, BoundedPareto, Zipf};
pub use openloop::{run_open_loop, EngineKind, OpenLoopConfig, OpenLoopReport};
pub use slo::{find_mst, MstConfig, MstResult, Slo, Trial};
pub use trace::{Mix, Trace, TracePacket, TrafficClass, WorkloadSpec};
pub use wallclock::{
    find_mst_wallclock, host_cpus, measure_capacity, run_wallclock_finite, run_wallclock_paced,
    WallClockConfig, WallClockReport, WallMstConfig, WallMstResult, WallTrial, WorkerWindow,
};

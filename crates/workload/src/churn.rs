//! Seeded route-churn generation: BGP-style update storms against the
//! compiled forwarding state.
//!
//! A [`ChurnGen`] owns a [`RouteStore`] seeded from the *identical*
//! router state a [`WorkloadSpec`] builds (imported route-by-route, not
//! re-derived), plus a synthetic flap pool per family. Every elapsed
//! churn interval it draws a batch of updates — withdrawals,
//! re-announcements, and next-hop replaces, concentrated on a hot set
//! with configurable locality — commits them as one [`RouteDelta`], and
//! hands back a tables-only [`RouteSnapshot`] for publication.
//!
//! The flap pools deliberately cover **no trace traffic**: the v4 pool
//! lives under 172.16/12 (traces send to 10/8), the v6 pool under
//! fdbb::/16 (traces send to fdaa::/16), names under `/churnpool`
//! (traces request `/wl/...`), and the XIA pool uses dedicated CIDs. So
//! a packet's outcome class (forwarded / consumed / dropped) is
//! invariant to *when* a worker picks up a churn epoch — only synthetic
//! pool state differs between epochs — and MST searches stay exactly
//! reproducible while the storm runs. What churn measures is the *cost*
//! of delta application and epoch pickup, not a behaviour change.

use crate::trace::WorkloadSpec;
use dip_crypto::DetRng;
use dip_dataplane::snapshot::RouteSnapshot;
use dip_routes::{RouteDelta, RouteStore, StoreStats};
use dip_tables::fib::NextHop;
use dip_tables::XiaNextHop;
use dip_wire::ipv4::Ipv4Addr;
use dip_wire::ipv6::Ipv6Addr;
use dip_wire::ndn::Name;
use dip_wire::xia::{Xid, XidType};

/// The shape of one update storm.
#[derive(Debug, Clone)]
pub struct ChurnSpec {
    /// Storm seed (independent of the workload seed).
    pub seed: u64,
    /// Route updates per virtual second.
    pub rate_ups: u64,
    /// Updates batched into one delta (one BGP UPDATE burst).
    pub batch: usize,
    /// Fraction of updates hitting the hot set (flap locality: real
    /// storms hammer few prefixes).
    pub locality: f64,
    /// Pool entries per family counted as hot.
    pub hot_set: usize,
    /// Synthetic flap-pool size per family.
    pub pool: usize,
}

impl Default for ChurnSpec {
    fn default() -> Self {
        ChurnSpec {
            seed: 0xc0_4a11,
            rate_ups: 10_000,
            batch: 32,
            locality: 0.8,
            hot_set: 64,
            pool: 1024,
        }
    }
}

/// Per-entry flap state of one pool family.
struct Pool {
    live: Vec<bool>,
}

impl Pool {
    fn new(n: usize) -> Self {
        Pool { live: vec![true; n] }
    }
}

/// The stateful storm: owns the compiled store and the flap pools.
pub struct ChurnGen {
    spec: ChurnSpec,
    rng: DetRng,
    store: RouteStore,
    v4: Pool,
    v6: Pool,
    names: Pool,
    xia: Pool,
    interval_ns: u64,
    next_ns: u64,
    updates: u64,
    deltas: u64,
}

/// Pool prefix `i` of the v4 flap family (172.16/12 block, /24 routes —
/// disjoint from the 10/8 the traces send to).
fn pool_v4(i: usize) -> (Ipv4Addr, u8) {
    (Ipv4Addr::from_u32(0xac10_0000 | ((i as u32) << 8)), 24)
}

/// Pool prefix `i` of the v6 flap family (fdbb::/16 block, /48 routes —
/// disjoint from the fdaa::/16 the traces send to).
fn pool_v6(i: usize) -> (Ipv6Addr, u8) {
    (Ipv6Addr::from_u128((0xfdbbu128 << 112) | ((i as u128) << 80)), 48)
}

/// Pool name `i` (`/churnpool/{i}` — traces request `/wl/...`).
fn pool_name(i: usize) -> Name {
    Name::parse(&format!("/churnpool/{i}"))
}

/// Pool CID `i` (never referenced by any trace DAG).
fn pool_cid(i: usize) -> Xid {
    Xid::derive(format!("churnpool-cid-{i}").as_bytes())
}

impl ChurnGen {
    /// A storm over the forwarding state of `spec`'s routers: imports
    /// the exact routes `WorkloadSpec::build_router` seeds (so compiled
    /// lookups answer like the legacy FIBs), announces the full flap
    /// pool, and compiles the initial tables (the one full rebuild).
    pub fn new(spec: &WorkloadSpec, churn: &ChurnSpec) -> ChurnGen {
        let router = spec.build_router(0);
        let st = router.state();
        let mut store = RouteStore::new();
        store.import(&st.ipv4_fib, &st.ipv6_fib, &st.name_fib, &st.xia);
        let n = churn.pool.max(1);
        for i in 0..n {
            let (a, l) = pool_v4(i);
            store.insert_v4(a, l, NextHop::port(9));
            let (a, l) = pool_v6(i);
            store.insert_v6(a, l, NextHop::port(9));
            store.insert_name(&pool_name(i), NextHop::port(9));
            store.insert_xia(XidType::Cid, pool_cid(i), XiaNextHop::Port(9));
        }
        store.rebuild();
        let interval_ns =
            (churn.batch.max(1) as u64).saturating_mul(1_000_000_000) / churn.rate_ups.max(1);
        ChurnGen {
            spec: ChurnSpec { pool: n, ..churn.clone() },
            rng: DetRng::seed_from_u64(churn.seed ^ 0x5_70c4),
            store,
            v4: Pool::new(n),
            v6: Pool::new(n),
            names: Pool::new(n),
            xia: Pool::new(n),
            interval_ns: interval_ns.max(1),
            next_ns: interval_ns.max(1),
            updates: 0,
            deltas: 0,
        }
    }

    /// The pre-storm tables, for installation before traffic starts.
    pub fn initial_snapshot(&self) -> RouteSnapshot {
        RouteSnapshot::from_tables(self.store.tables())
    }

    /// A pool index, hot with probability `locality`.
    fn index(&mut self) -> usize {
        let hot = self.spec.hot_set.clamp(1, self.spec.pool);
        if self.rng.gen_bool(self.spec.locality) {
            self.rng.gen_index(hot)
        } else {
            self.rng.gen_index(self.spec.pool)
        }
    }

    /// One update against one family: withdraw a live route, re-announce
    /// a dead one, or replace a live next hop.
    fn update(&mut self, delta: &mut RouteDelta) {
        let family = self.rng.gen_index(4);
        let i = self.index();
        let port = NextHop::port(self.rng.gen_range_inclusive(1, 64) as u32);
        match family {
            0 => {
                let (a, l) = pool_v4(i);
                if self.v4.live[i] && self.rng.gen_bool(0.5) {
                    self.v4.live[i] = false;
                    delta.withdraw_v4(a, l);
                } else {
                    self.v4.live[i] = true;
                    delta.announce_v4(a, l, port);
                }
            }
            1 => {
                let (a, l) = pool_v6(i);
                if self.v6.live[i] && self.rng.gen_bool(0.5) {
                    self.v6.live[i] = false;
                    delta.withdraw_v6(a, l);
                } else {
                    self.v6.live[i] = true;
                    delta.announce_v6(a, l, port);
                }
            }
            2 => {
                if self.names.live[i] && self.rng.gen_bool(0.5) {
                    self.names.live[i] = false;
                    delta.withdraw_name(pool_name(i));
                } else {
                    self.names.live[i] = true;
                    delta.announce_name(pool_name(i), port);
                }
            }
            _ => {
                if self.xia.live[i] && self.rng.gen_bool(0.5) {
                    self.xia.live[i] = false;
                    delta.withdraw_xia(XidType::Cid, pool_cid(i));
                } else {
                    self.xia.live[i] = true;
                    delta.announce_xia(
                        XidType::Cid,
                        pool_cid(i),
                        XiaNextHop::Port(self.rng.gen_range_inclusive(1, 64) as u32),
                    );
                }
            }
        }
        self.updates += 1;
    }

    /// Advances the storm clock to `now_ns`: commits one delta per
    /// elapsed interval and returns the latest tables when any fired
    /// (publish once, no matter how many batches elapsed).
    pub fn poll(&mut self, now_ns: u64) -> Option<RouteSnapshot> {
        let mut fired = false;
        while self.next_ns <= now_ns {
            self.next_ns += self.interval_ns;
            let mut delta = RouteDelta::new();
            for _ in 0..self.spec.batch.max(1) {
                self.update(&mut delta);
            }
            self.store.commit(&delta);
            self.deltas += 1;
            fired = true;
        }
        fired.then(|| RouteSnapshot::from_tables(self.store.tables()))
    }

    /// Records a dataplane pickup of a published snapshot.
    pub fn note_epoch_swap(&mut self) {
        self.store.note_epoch_swap();
    }

    /// Store counters (deltas, delta routes, rebuilds, swaps).
    pub fn stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// Route updates generated so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Deltas committed so far.
    pub fn deltas(&self) -> u64 {
        self.deltas
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Mix, TrafficClass, INGRESS_PORT};

    fn small_spec(seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            seed,
            table_size: 400,
            catalog_size: 64,
            pit_preseed: 256,
            ..Default::default()
        }
    }

    /// The heart of churn safety: with compiled tables installed, every
    /// trace packet lands in the same outcome class as on the legacy
    /// FIBs — before the storm and at every point during it.
    #[test]
    fn compiled_tables_match_legacy_outcomes_under_churn() {
        let spec = small_spec(21);
        let mut gen =
            ChurnGen::new(&spec, &ChurnSpec { rate_ups: 1_000_000, ..Default::default() });

        let mut legacy = spec.build_router(0);
        let mut compiled = spec.build_router(0);
        gen.initial_snapshot().apply(compiled.state_mut());
        assert!(compiled.state().compiled.is_some());

        for class in TrafficClass::ALL {
            let sub = WorkloadSpec { mix: Mix::single(class), ..spec.clone() };
            let trace = sub.generate(200_000, 60);
            for (i, p) in trace.packets.iter().enumerate() {
                if let Some(snap) = gen.poll(p.at_ns) {
                    snap.apply(compiled.state_mut());
                }
                let mut a = p.bytes.clone();
                let mut b = p.bytes.clone();
                let (va, _) = legacy.process(&mut a, INGRESS_PORT, p.at_ns);
                let (vb, _) = compiled.process(&mut b, INGRESS_PORT, p.at_ns);
                assert_eq!(
                    va.outcome(),
                    vb.outcome(),
                    "{class:?} packet {i}: legacy {va:?} vs compiled {vb:?}"
                );
            }
        }
        assert!(gen.deltas() > 0, "the storm actually ran");
        assert_eq!(gen.stats().full_rebuilds, 1, "churn never rebuilds");
    }

    #[test]
    fn storm_is_deterministic_and_paced() {
        let spec = small_spec(5);
        let churn = ChurnSpec { rate_ups: 10_000, batch: 32, ..Default::default() };
        let mut a = ChurnGen::new(&spec, &churn);
        let mut b = ChurnGen::new(&spec, &churn);
        // 32 updates per batch at 10k ups = one delta per 3.2 virtual ms.
        assert!(a.poll(3_000_000).is_none(), "no interval elapsed yet");
        assert!(a.poll(3_200_000).is_some());
        assert!(b.poll(3_200_000).is_some());
        assert_eq!(a.updates(), 32);
        // Catch-up: jumping ten intervals commits ten deltas, one publish.
        assert!(a.poll(35_200_000).is_some());
        assert_eq!(a.deltas(), 11);
        b.poll(35_200_000);
        assert_eq!(a.stats().delta_routes, b.stats().delta_routes, "same seed, same storm");
    }
}

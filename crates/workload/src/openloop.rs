//! Open-loop driving: offer a trace at a fixed rate, measure latency and
//! loss, and never let the device's behaviour slow the offered load.
//!
//! Latency under overload comes from a **virtual-time queue model**, not
//! wall clocks: each (modeled) worker is an M/G/1-style server whose
//! service times are the deterministic [`TofinoModel`] pipeline costs.
//! Arrivals walk the trace timestamps; a packet that finds its worker's
//! queue at capacity is an injection-side `queue_full` drop, counted
//! through the shared drop taxonomy so the accounting identity
//! (`forwarded + consumed + drops == injected`) holds on every run —
//! overloaded ones included. The packets that *are* admitted still run
//! through the real engine (single [`DipRouter`] or the threaded
//! [`Dataplane`]), so verdict counts are real, while latency and drop
//! decisions replay identically for one seed: that is what makes the MST
//! search reproducible.

use std::collections::VecDeque;

use crate::churn::{ChurnGen, ChurnSpec};
use crate::trace::{Trace, TrafficClass, WorkloadSpec, INGRESS_PORT};
use dip_dataplane::{Backpressure, Dataplane, DataplaneConfig};
use dip_sim::TofinoModel;
use dip_telemetry::{DropReason, Histogram, OutcomeCounters, PacketOutcome, Registry, Snapshot};

/// Which engine executes the admitted packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// One [`dip_core::DipRouter`] behind one modeled queue — the
    /// deterministic baseline.
    Router,
    /// The threaded [`Dataplane`]: flow-sharded workers, each behind its
    /// own modeled queue sized to its real ring.
    Dataplane {
        /// Worker threads.
        workers: usize,
        /// Packets per execution batch.
        batch_size: usize,
    },
}

/// Open-loop driver knobs.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// The engine under test.
    pub engine: EngineKind,
    /// Modeled per-worker queue depth (and, for the dataplane, the real
    /// ring capacity — rounded up to a power of two by the ring).
    pub queue_capacity: usize,
    /// The service-time model.
    pub model: TofinoModel,
    /// When set, a route-update storm runs alongside the trace: deltas
    /// commit on the trace's virtual clock and publish as tables-only
    /// epoch swaps the engine picks up mid-run.
    pub churn: Option<ChurnSpec>,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        OpenLoopConfig {
            engine: EngineKind::Router,
            queue_capacity: 1024,
            model: TofinoModel::tofino(),
            churn: None,
        }
    }
}

/// What one open-loop trial measured.
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    /// The offered rate.
    pub offered_pps: u64,
    /// Packets the trace offered.
    pub injected: u64,
    /// Packets forwarded (from the engine's registry).
    pub forwarded: u64,
    /// Packets consumed locally (delivered, aggregated, cache-answered).
    pub consumed: u64,
    /// Total drops, all reasons.
    pub dropped: u64,
    /// The overload-specific slice of `dropped`.
    pub queue_full: u64,
    /// Modeled median latency.
    pub p50_ns: u64,
    /// Modeled 99th-percentile latency.
    pub p99_ns: u64,
    /// Whether `forwarded + consumed + dropped == injected`.
    pub identity_holds: bool,
    /// Rate-dependent trace fingerprint.
    pub trace_hash: u64,
    /// Rate-independent trace fingerprint (constant across one search).
    pub content_hash: u64,
    /// Route deltas committed by the churn storm (0 when churn is off).
    pub churn_deltas: u64,
    /// Route updates inside those deltas.
    pub churn_updates: u64,
    /// Snapshot publications the engine picked up.
    pub churn_epoch_swaps: u64,
}

impl OpenLoopReport {
    /// Fraction of offered packets dropped (any reason).
    pub fn drop_frac(&self) -> f64 {
        if self.injected == 0 {
            0.0
        } else {
            self.dropped as f64 / self.injected as f64
        }
    }
}

/// Log-spaced latency bucket bounds, 64 ns to ~4 s at ratio 2^(1/4) —
/// ≤ ~19% relative quantile error by construction (see the pinned bound
/// in `dip-telemetry`'s quantile tests).
pub(crate) fn latency_bounds() -> Vec<u64> {
    let ratio = 2f64.powf(0.25);
    let mut bounds = Vec::new();
    let mut b = 64.0f64;
    while b < 4.2e9 {
        let v = b.round() as u64;
        if bounds.last() != Some(&v) {
            bounds.push(v);
        }
        b *= ratio;
    }
    bounds
}

/// One modeled FIFO server: completion times of queued packets in
/// virtual nanoseconds.
struct ModelQueue {
    completions: VecDeque<f64>,
    busy_until: f64,
    capacity: usize,
}

impl ModelQueue {
    fn new(capacity: usize) -> Self {
        ModelQueue { completions: VecDeque::new(), busy_until: 0.0, capacity: capacity.max(1) }
    }

    /// Drains completions at `arrival`, then either admits (returning the
    /// modeled sojourn time) or refuses (`None` = queue full).
    fn offer(&mut self, arrival: f64, service_ns: f64) -> Option<f64> {
        while self.completions.front().is_some_and(|&c| c <= arrival) {
            self.completions.pop_front();
        }
        if self.completions.len() >= self.capacity {
            return None;
        }
        self.busy_until = self.busy_until.max(arrival) + service_ns;
        self.completions.push_back(self.busy_until);
        Some(self.busy_until - arrival)
    }
}

/// Pulls the identity terms out of a registry snapshot.
fn account(snap: &Snapshot) -> (u64, u64, u64, u64) {
    let forwarded = snap.sum_where("dip_packets_total", &[("outcome", "forwarded")]);
    let consumed = snap.sum_where("dip_packets_total", &[("outcome", "consumed")]);
    let dropped = snap.get("dip_drops_total");
    let queue_full = snap.sum_where("dip_drops_total", &[("reason", "queue_full")]);
    (forwarded, consumed, dropped, queue_full)
}

fn finish(
    trace: &Trace,
    snap: &Snapshot,
    hist: &Histogram,
    churn: Option<&ChurnGen>,
) -> OpenLoopReport {
    let (forwarded, consumed, dropped, queue_full) = account(snap);
    let injected = trace.len() as u64;
    OpenLoopReport {
        offered_pps: trace.rate_pps,
        injected,
        forwarded,
        consumed,
        dropped,
        queue_full,
        p50_ns: hist.quantile(0.50),
        p99_ns: hist.quantile(0.99),
        identity_holds: forwarded + consumed + dropped == injected,
        trace_hash: trace.hash(),
        content_hash: trace.content_hash(),
        churn_deltas: churn.map_or(0, |g| g.deltas()),
        churn_updates: churn.map_or(0, |g| g.updates()),
        churn_epoch_swaps: churn.map_or(0, |g| g.stats().epoch_swaps),
    }
}

/// Offers `count` packets of `spec` at `rate_pps` and reports what the
/// engine did with them.
pub fn run_open_loop(
    spec: &WorkloadSpec,
    rate_pps: u64,
    count: usize,
    cfg: &OpenLoopConfig,
) -> OpenLoopReport {
    let trace = spec.generate(rate_pps, count);
    match cfg.engine {
        EngineKind::Router => run_router(spec, &trace, cfg),
        EngineKind::Dataplane { workers, batch_size } => {
            run_dataplane(spec, &trace, cfg, workers, batch_size)
        }
    }
}

fn run_router(spec: &WorkloadSpec, trace: &Trace, cfg: &OpenLoopConfig) -> OpenLoopReport {
    let registry = Registry::new();
    let counters = OutcomeCounters::register(&registry, &[("node", "openloop")]);
    let hist = registry.histogram(
        "dip_workload_latency_ns",
        "Modeled per-packet sojourn time",
        &[],
        &latency_bounds(),
    );
    let mut router = spec.build_router(1);
    let mut churn = cfg.churn.as_ref().map(|c| ChurnGen::new(spec, c));
    if let Some(gen) = &mut churn {
        gen.initial_snapshot().apply(router.state_mut());
        gen.note_epoch_swap();
    }
    let mut queue = ModelQueue::new(cfg.queue_capacity);
    for p in &trace.packets {
        if let Some(gen) = &mut churn {
            if let Some(snap) = gen.poll(p.at_ns) {
                snap.apply(router.state_mut());
                gen.note_epoch_swap();
            }
        }
        // Per-packet exact service: process first (the real pipeline
        // stats price the service time), but only if there is room.
        // Admission is decided on queue state alone, so refused packets
        // never touch the engine — exactly like a full NIC ring.
        let arrival = p.at_ns as f64;
        while queue.completions.front().is_some_and(|&c| c <= arrival) {
            queue.completions.pop_front();
        }
        if queue.completions.len() >= queue.capacity {
            counters.record(PacketOutcome::Dropped(DropReason::QueueFull));
            continue;
        }
        let mut buf = p.bytes.clone();
        let (verdict, stats) = router.process(&mut buf, INGRESS_PORT, p.at_ns);
        // Price the service with the MAC the router actually runs (set by
        // the spec), not a hardcoded implementation.
        let mac = router.state().mac_choice;
        let service = cfg.model.process_ns(&stats, p.bytes.len(), mac);
        let sojourn =
            queue.offer(arrival, service).expect("capacity was checked before processing");
        hist.observe(sojourn as u64);
        counters.record(verdict.outcome());
    }
    finish(trace, &registry.snapshot(), &hist, churn.as_ref())
}

/// Calibrates one modeled service time per traffic class by running a
/// representative packet of each class through a scratch router and
/// pricing the resulting pipeline stats.
///
/// The MAC implementation is read off the built router
/// (`RouterState::mac_choice`, set by [`WorkloadSpec::mac_choice`]) — the
/// old code hardcoded 2EM here, which silently priced an AES-configured
/// experiment as if the resubmit pass were free. With the fix, an AES
/// spec raises the service time of MAC-verifying classes (OPT, NDN+OPT)
/// while plain forwarding classes are unaffected (pinned by test).
pub(crate) fn calibrate_service(
    spec: &WorkloadSpec,
    model: &TofinoModel,
) -> std::collections::HashMap<TrafficClass, f64> {
    let mut scratch = spec.build_router(u64::MAX);
    let mac = scratch.state().mac_choice;
    let mut gen = crate::trace::TraceGen::new(spec);
    let mut service = std::collections::HashMap::new();
    for class in spec.mix.classes() {
        let bytes = gen.packet_for(class);
        let mut buf = bytes.clone();
        let (_, stats) = scratch.process(&mut buf, INGRESS_PORT, 0);
        service.insert(class, model.process_ns(&stats, bytes.len(), mac));
    }
    service
}

fn run_dataplane(
    spec: &WorkloadSpec,
    trace: &Trace,
    cfg: &OpenLoopConfig,
    workers: usize,
    batch_size: usize,
) -> OpenLoopReport {
    // Calibrate one service time per traffic class on a scratch router:
    // the threaded workers cannot report per-packet pipeline stats
    // synchronously, and within a class the FN chain (hence the cost) is
    // shape-stable.
    let service = calibrate_service(spec, &cfg.model);

    let mut dp = Dataplane::start(
        DataplaneConfig {
            workers: workers.max(1),
            batch_size: batch_size.max(1),
            ring_capacity: cfg.queue_capacity,
            backpressure: Backpressure::Block,
            ..Default::default()
        },
        |i| spec.build_router(i as u64),
    );
    // Modeled injection drops land in the same registry the workers
    // report into, under the counted overload reason.
    let injector = OutcomeCounters::register(dp.registry(), &[("worker", "injector")]);
    let hist = dp.registry().histogram(
        "dip_workload_latency_ns",
        "Modeled per-packet sojourn time",
        &[],
        &latency_bounds(),
    );
    let mut queues: Vec<ModelQueue> =
        (0..dp.workers()).map(|w| ModelQueue::new(dp.ring_capacity(w))).collect();
    let mut churn = cfg.churn.as_ref().map(|c| ChurnGen::new(spec, c));
    if let Some(gen) = &mut churn {
        // Workers pick the compiled tables up at their next batch
        // boundary; until then the legacy FIBs answer identically.
        dp.publish_routes(gen.initial_snapshot());
        gen.note_epoch_swap();
    }
    for p in &trace.packets {
        if let Some(gen) = &mut churn {
            if let Some(snap) = gen.poll(p.at_ns) {
                dp.publish_routes(snap);
                gen.note_epoch_swap();
            }
        }
        let w = dp.shard_of(&p.bytes);
        let svc = service.get(&p.class).copied().unwrap_or(0.0);
        match queues[w].offer(p.at_ns as f64, svc) {
            None => injector.record(PacketOutcome::Dropped(DropReason::QueueFull)),
            Some(sojourn) => {
                hist.observe(sojourn as u64);
                // Block backpressure: the real ring may briefly lag the
                // model, but never drops — every admitted packet is
                // processed and counted by its worker. `submit_bytes`
                // refills a recycled buffer instead of cloning the trace
                // packet (the satellite-2 allocation fix).
                dp.submit_bytes(&p.bytes, INGRESS_PORT, p.at_ns);
            }
        }
    }
    let report = dp.shutdown();
    finish(trace, &report.registry.snapshot(), &hist, churn.as_ref())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Mix;

    fn small_spec(seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            seed,
            table_size: 300,
            catalog_size: 64,
            pit_preseed: 512,
            ..Default::default()
        }
    }

    #[test]
    fn router_engine_holds_identity_at_low_rate() {
        let r = run_open_loop(&small_spec(3), 100_000, 400, &OpenLoopConfig::default());
        assert!(r.identity_holds, "identity: {r:?}");
        assert_eq!(r.injected, 400);
        assert_eq!(r.queue_full, 0, "no overload at 100kpps: {r:?}");
        assert!(r.p99_ns >= r.p50_ns && r.p50_ns > 0, "latency populated: {r:?}");
    }

    #[test]
    fn router_engine_counts_queue_full_under_overload_and_identity_still_holds() {
        let cfg = OpenLoopConfig { queue_capacity: 8, ..Default::default() };
        let r = run_open_loop(&small_spec(3), 2_000_000_000, 600, &cfg);
        assert!(r.queue_full > 0, "2 Gpps into one modeled server must overload: {r:?}");
        assert!(r.identity_holds, "identity survives overload: {r:?}");
        assert!(r.drop_frac() > 0.0);
    }

    #[test]
    fn dataplane_engine_holds_identity() {
        let cfg = OpenLoopConfig {
            engine: EngineKind::Dataplane { workers: 2, batch_size: 16 },
            ..Default::default()
        };
        let r = run_open_loop(&small_spec(9), 200_000, 300, &cfg);
        assert!(r.identity_holds, "identity: {r:?}");
        assert_eq!(r.injected, 300);
    }

    /// The churn-identity smoke: a 1M-ups storm alongside the trace must
    /// not break the accounting identity or reproducibility, on either
    /// engine — epoch pickup timing may vary, outcomes may not.
    #[test]
    fn churn_storm_preserves_identity_and_determinism() {
        for engine in [EngineKind::Router, EngineKind::Dataplane { workers: 2, batch_size: 16 }] {
            let cfg = OpenLoopConfig {
                engine,
                churn: Some(crate::churn::ChurnSpec { rate_ups: 1_000_000, ..Default::default() }),
                ..Default::default()
            };
            let a = run_open_loop(&small_spec(7), 200_000, 300, &cfg);
            let b = run_open_loop(&small_spec(7), 200_000, 300, &cfg);
            assert!(a.identity_holds, "{engine:?} identity under churn: {a:?}");
            assert!(a.churn_deltas > 0, "the storm fired: {a:?}");
            assert!(a.churn_updates >= a.churn_deltas);
            assert!(a.churn_epoch_swaps > 0);
            assert_eq!(
                (a.forwarded, a.consumed, a.dropped, a.p50_ns, a.p99_ns, a.churn_deltas),
                (b.forwarded, b.consumed, b.dropped, b.p50_ns, b.p99_ns, b.churn_deltas),
                "{engine:?} must reproduce exactly under churn"
            );
        }
    }

    #[test]
    fn calibration_prices_each_class_with_its_actual_mac() {
        use dip_fnops::context::MacChoice;
        let model = TofinoModel::tofino();
        let spec = WorkloadSpec {
            mix: Mix::new(vec![(TrafficClass::Ipv4, 1), (TrafficClass::Opt, 1)]),
            ..small_spec(5)
        };
        let em = calibrate_service(&spec, &model);
        assert_ne!(
            em[&TrafficClass::Ipv4],
            em[&TrafficClass::Opt],
            "ipv4 and opt run different FN chains; their calibrated services must differ"
        );
        // An AES-configured spec pays the resubmit pass — but only on the
        // MAC-verifying class. The old hardcoded-2EM calibration priced
        // both specs identically.
        let aes = WorkloadSpec { mac_choice: MacChoice::Aes, ..spec.clone() };
        let aes = calibrate_service(&aes, &model);
        assert_eq!(
            aes[&TrafficClass::Ipv4],
            em[&TrafficClass::Ipv4],
            "ipv4 runs no MAC; the cipher choice must not move its price"
        );
        assert!(
            aes[&TrafficClass::Opt] > em[&TrafficClass::Opt],
            "AES must price OPT above 2EM (resubmit pass): {} vs {}",
            aes[&TrafficClass::Opt],
            em[&TrafficClass::Opt]
        );
    }

    #[test]
    fn reports_are_reproducible_per_seed() {
        for engine in [EngineKind::Router, EngineKind::Dataplane { workers: 2, batch_size: 8 }] {
            let cfg = OpenLoopConfig { engine, ..Default::default() };
            let spec = WorkloadSpec { mix: Mix::all(), ..small_spec(11) };
            let a = run_open_loop(&spec, 500_000, 250, &cfg);
            let b = run_open_loop(&spec, 500_000, 250, &cfg);
            assert_eq!(a.trace_hash, b.trace_hash);
            assert_eq!(
                (a.forwarded, a.consumed, a.dropped, a.p50_ns, a.p99_ns),
                (b.forwarded, b.consumed, b.dropped, b.p50_ns, b.p99_ns),
                "{engine:?} must reproduce exactly"
            );
        }
    }
}

//! SLO evaluation and the max-sustainable-throughput (MST) search.
//!
//! "How fast is the router" is ill-posed under open-loop load: offered
//! rate is an input, and past saturation the latency model diverges while
//! drops climb. The well-posed question is the classic sustained-rate
//! one: **the highest offered rate at which the SLO still holds** (p99
//! sojourn below a bound, drop fraction below a bound). [`find_mst`]
//! answers it by bisection on the offered rate: every trial replays the
//! same seed (content is rate-independent, so every trial offers the
//! *same packets* at a different tempo), the accounting identity is
//! asserted on every trial — failing ones included — and the whole search
//! is deterministic, so one `(spec, config)` pair always converges to the
//! same MST.

use crate::openloop::{run_open_loop, OpenLoopConfig, OpenLoopReport};
use crate::trace::WorkloadSpec;

/// The service-level objective a trial must meet.
#[derive(Debug, Clone, Copy)]
pub struct Slo {
    /// Modeled p99 sojourn bound, nanoseconds.
    pub p99_ns: u64,
    /// Maximum tolerated drop fraction (all reasons).
    pub max_drop_frac: f64,
}

impl Default for Slo {
    fn default() -> Self {
        Slo { p99_ns: 1_000_000, max_drop_frac: 0.001 }
    }
}

/// MST search knobs.
#[derive(Debug, Clone)]
pub struct MstConfig {
    /// The objective.
    pub slo: Slo,
    /// How each trial drives the engine.
    pub open_loop: OpenLoopConfig,
    /// Packets offered per trial.
    pub packets_per_trial: usize,
    /// Lower bracket (a rate assumed sustainable).
    pub lo_pps: u64,
    /// Upper bracket (a rate assumed unsustainable).
    pub hi_pps: u64,
    /// Bisection iteration cap.
    pub max_iters: usize,
}

impl Default for MstConfig {
    fn default() -> Self {
        MstConfig {
            slo: Slo::default(),
            open_loop: OpenLoopConfig::default(),
            packets_per_trial: 2048,
            lo_pps: 1_000,
            hi_pps: 1_000_000_000,
            max_iters: 24,
        }
    }
}

/// One bisection trial, kept for the audit trail.
#[derive(Debug, Clone)]
pub struct Trial {
    /// Offered rate.
    pub offered_pps: u64,
    /// Modeled median sojourn.
    pub p50_ns: u64,
    /// Modeled p99 sojourn.
    pub p99_ns: u64,
    /// Fraction of offered packets dropped.
    pub drop_frac: f64,
    /// Overload drops (`queue_full`) alone.
    pub queue_full: u64,
    /// Whether the SLO held.
    pub passed: bool,
    /// Rate-dependent trace fingerprint.
    pub trace_hash: u64,
    /// Route deltas committed by the churn storm during this trial
    /// (0 when the trial ran quiescent).
    pub churn_deltas: u64,
    /// Route-table epochs the engine picked up during this trial.
    pub churn_epoch_swaps: u64,
}

/// The search outcome.
#[derive(Debug, Clone)]
pub struct MstResult {
    /// Highest rate that met the SLO (0 when even `lo_pps` failed).
    pub mst_pps: u64,
    /// Every trial, in execution order.
    pub trials: Vec<Trial>,
    /// The rate-independent content fingerprint shared by every trial.
    pub content_hash: u64,
}

impl MstResult {
    /// The trial that ran at the reported MST, if the search passed at
    /// all.
    pub fn mst_trial(&self) -> Option<&Trial> {
        self.trials.iter().rfind(|t| t.passed && t.offered_pps == self.mst_pps)
    }
}

fn evaluate(report: &OpenLoopReport, slo: &Slo) -> Trial {
    // ISSUE contract: the identity is validated on EVERY trial. A
    // violation is a harness or engine bug, never a legitimate "fail the
    // SLO" outcome — surface it loudly instead of folding it into MST.
    assert!(
        report.identity_holds,
        "accounting identity violated at {} pps: forwarded {} + consumed {} + dropped {} != injected {}",
        report.offered_pps, report.forwarded, report.consumed, report.dropped, report.injected
    );
    let drop_frac = report.drop_frac();
    Trial {
        offered_pps: report.offered_pps,
        p50_ns: report.p50_ns,
        p99_ns: report.p99_ns,
        drop_frac,
        queue_full: report.queue_full,
        passed: report.p99_ns <= slo.p99_ns && drop_frac <= slo.max_drop_frac,
        trace_hash: report.trace_hash,
        churn_deltas: report.churn_deltas,
        churn_epoch_swaps: report.churn_epoch_swaps,
    }
}

/// Bisects offered rate for the highest SLO-passing value.
///
/// Convergence: stops when the bracket narrows below `lo/64` (a ~1.6%
/// relative tolerance) or after `max_iters` trials, whichever first.
/// Deterministic: same `(spec, cfg)` ⇒ same trials ⇒ same MST.
pub fn find_mst(spec: &WorkloadSpec, cfg: &MstConfig) -> MstResult {
    let mut trials: Vec<Trial> = Vec::new();
    let mut content_hash = 0;
    let mut run = |rate: u64, trials: &mut Vec<Trial>| -> bool {
        let report = run_open_loop(spec, rate, cfg.packets_per_trial, &cfg.open_loop);
        debug_assert!(content_hash == 0 || content_hash == report.content_hash);
        content_hash = report.content_hash;
        let trial = evaluate(&report, &cfg.slo);
        let passed = trial.passed;
        trials.push(trial);
        passed
    };

    let mut lo = cfg.lo_pps.max(1);
    let mut hi = cfg.hi_pps.max(lo + 1);
    if !run(lo, &mut trials) {
        return MstResult { mst_pps: 0, trials, content_hash };
    }
    if run(hi, &mut trials) {
        // The bracket never contained the knee; report hi rather than
        // pretending precision we don't have.
        return MstResult { mst_pps: hi, trials, content_hash };
    }
    let mut iters = 0;
    while hi - lo > (lo / 64).max(1) && iters < cfg.max_iters {
        let mid = lo + (hi - lo) / 2;
        if run(mid, &mut trials) {
            lo = mid;
        } else {
            hi = mid;
        }
        iters += 1;
    }
    MstResult { mst_pps: lo, trials, content_hash }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            seed,
            table_size: 300,
            catalog_size: 64,
            pit_preseed: 512,
            ..Default::default()
        }
    }

    fn cfg() -> MstConfig {
        // Trials must offer more packets than the queue holds, or
        // overload can never surface as queue_full drops.
        MstConfig {
            packets_per_trial: 512,
            open_loop: OpenLoopConfig { queue_capacity: 64, ..Default::default() },
            max_iters: 12,
            ..Default::default()
        }
    }

    #[test]
    fn mst_exists_between_the_brackets() {
        let r = find_mst(&spec(7), &cfg());
        assert!(r.mst_pps > 0, "some rate must pass: {:?}", r.trials);
        assert!(r.mst_pps < 1_000_000_000, "the default hi bracket must fail");
        assert!(r.trials.iter().any(|t| !t.passed), "search saw the knee");
        let mst = r.mst_trial().expect("passing trial recorded");
        assert!(mst.p99_ns <= 1_000_000 && mst.drop_frac <= 0.001);
    }

    #[test]
    fn mst_is_reproducible() {
        let a = find_mst(&spec(7), &cfg());
        let b = find_mst(&spec(7), &cfg());
        assert_eq!(a.mst_pps, b.mst_pps);
        assert_eq!(a.content_hash, b.content_hash);
        assert_eq!(a.trials.len(), b.trials.len());
        for (x, y) in a.trials.iter().zip(&b.trials) {
            assert_eq!(
                (x.offered_pps, x.trace_hash, x.passed),
                (y.offered_pps, y.trace_hash, y.passed)
            );
        }
    }

    #[test]
    fn impossible_slo_reports_zero() {
        let mut c = cfg();
        c.slo.p99_ns = 1;
        let r = find_mst(&spec(7), &c);
        assert_eq!(r.mst_pps, 0);
        assert_eq!(r.trials.len(), 1, "search stops after the failed lower bracket");
    }
}

//! Border-router backward compatibility (§2.4).
//!
//! "The existing network protocol header can be viewed as an FN location in
//! the DIP. For example, when a DIP host connects to another host using
//! IPv6, we set the IPv6 header in the FN location part and define the
//! corresponding forwarding operations. Afterward, the border router can
//! remove the basic header and FN definitions, so that the packet is routed
//! only based on the FN operations that are recognized by the legacy
//! devices. Similarly, to process packets from a legacy domain, the inbound
//! border router needs to add back the DIP basic header and FN
//! definitions."
//!
//! [`encap_ipv6`]/[`decap_ipv6`] (and the IPv4 pair) implement exactly that
//! transformation; both directions are loss-free inverses.

use dip_wire::ipv4::{Ipv4Repr, IPV4_HEADER_LEN};
use dip_wire::ipv6::{Ipv6Repr, IPV6_HEADER_LEN};
use dip_wire::packet::DipRepr;
use dip_wire::triple::{FnKey, FnTriple};
use dip_wire::{DipPacket, Result, WireError};

/// Wraps a legacy IPv6 packet into a DIP packet: the whole 40-byte IPv6
/// header becomes the FN locations area, with `F_128_match` pointing at the
/// destination address and `F_source` at the source (inbound border
/// router).
pub fn encap_ipv6(ipv6_packet: &[u8]) -> Result<Vec<u8>> {
    let repr = Ipv6Repr::parse(ipv6_packet)?;
    let header = &ipv6_packet[..IPV6_HEADER_LEN];
    let payload = &ipv6_packet[IPV6_HEADER_LEN..];
    let dip = DipRepr {
        next_header: repr.next_header,
        hop_limit: repr.hop_limit,
        parallel: false,
        fns: vec![
            // dst at byte 24 = bit 192, src at byte 8 = bit 64 of the header.
            FnTriple::router(192, 128, FnKey::Match128),
            FnTriple::router(64, 128, FnKey::Source),
        ],
        locations: header.to_vec(),
    };
    dip.to_bytes(payload)
}

/// Strips the DIP header from a packet whose FN locations carry a legacy
/// IPv6 header, recovering the original IPv6 packet (outbound border
/// router).
pub fn decap_ipv6(dip_packet: &[u8]) -> Result<Vec<u8>> {
    let pkt = DipPacket::new_checked(dip_packet)?;
    let locs = pkt.locations();
    if locs.len() != IPV6_HEADER_LEN {
        return Err(WireError::Malformed("locations do not hold an IPv6 header"));
    }
    // Validate it actually parses as IPv6.
    Ipv6Repr::parse(locs)?;
    let mut out = locs.to_vec();
    out.extend_from_slice(pkt.payload());
    Ok(out)
}

/// IPv4 analogue of [`encap_ipv6`].
pub fn encap_ipv4(ipv4_packet: &[u8]) -> Result<Vec<u8>> {
    let repr = Ipv4Repr::parse(ipv4_packet)?;
    let header = &ipv4_packet[..IPV4_HEADER_LEN];
    let payload = &ipv4_packet[IPV4_HEADER_LEN..];
    let dip = DipRepr {
        next_header: repr.protocol,
        hop_limit: repr.ttl,
        parallel: false,
        fns: vec![
            // dst at byte 16 = bit 128, src at byte 12 = bit 96.
            FnTriple::router(128, 32, FnKey::Match32),
            FnTriple::router(96, 32, FnKey::Source),
        ],
        locations: header.to_vec(),
    };
    dip.to_bytes(payload)
}

/// IPv4 analogue of [`decap_ipv6`].
pub fn decap_ipv4(dip_packet: &[u8]) -> Result<Vec<u8>> {
    let pkt = DipPacket::new_checked(dip_packet)?;
    let locs = pkt.locations();
    if locs.len() != IPV4_HEADER_LEN {
        return Err(WireError::Malformed("locations do not hold an IPv4 header"));
    }
    Ipv4Repr::parse(locs)?;
    let mut out = locs.to_vec();
    out.extend_from_slice(pkt.payload());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dip_wire::ipv4::Ipv4Addr;
    use dip_wire::ipv6::Ipv6Addr;

    fn v6_packet() -> Vec<u8> {
        Ipv6Repr {
            src: Ipv6Addr::new([0xfdaa, 0, 0, 0, 0, 0, 0, 1]),
            dst: Ipv6Addr::new([0xfdaa, 0, 0, 0, 0, 0, 0, 2]),
            next_header: 17,
            hop_limit: 61,
            payload_len: 0,
        }
        .to_bytes(b"legacy payload")
        .unwrap()
    }

    #[test]
    fn ipv6_encap_decap_is_lossless() {
        let original = v6_packet();
        let dip = encap_ipv6(&original).unwrap();
        assert_eq!(decap_ipv6(&dip).unwrap(), original);
    }

    #[test]
    fn encapsulated_v6_routes_via_match128() {
        use dip_fnops::FnRegistry;
        use dip_tables::fib::NextHop;
        let dip = encap_ipv6(&v6_packet()).unwrap();
        let mut router =
            crate::router::DipRouter::new(1, [0; 16]).with_registry(FnRegistry::standard());
        router.state_mut().ipv6_fib.add_route(
            Ipv6Addr::new([0xfdaa, 0, 0, 0, 0, 0, 0, 0]),
            16,
            NextHop::port(5),
        );
        let mut buf = dip.clone();
        let (verdict, _) = router.process(&mut buf, 0, 0);
        assert_eq!(verdict, crate::router::Verdict::Forward(vec![5]));
    }

    #[test]
    fn encap_preserves_hop_limit_and_next_header() {
        let dip = encap_ipv6(&v6_packet()).unwrap();
        let pkt = DipPacket::new_checked(&dip[..]).unwrap();
        let hdr = pkt.basic_header().unwrap();
        assert_eq!(hdr.hop_limit, 61);
        assert_eq!(hdr.next_header, 17);
    }

    #[test]
    fn ipv4_encap_decap_is_lossless() {
        let original = Ipv4Repr {
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(10, 0, 0, 2),
            protocol: 6,
            ttl: 33,
            payload_len: 0,
        }
        .to_bytes(b"tcp-ish")
        .unwrap();
        let dip = encap_ipv4(&original).unwrap();
        assert_eq!(decap_ipv4(&dip).unwrap(), original);
    }

    #[test]
    fn decap_rejects_non_legacy_locations() {
        let dip = DipRepr { locations: vec![0u8; 12], ..Default::default() }.to_bytes(&[]).unwrap();
        assert!(decap_ipv6(&dip).is_err());
        assert!(decap_ipv4(&dip).is_err());
    }

    #[test]
    fn encap_rejects_garbage() {
        assert!(encap_ipv6(&[0u8; 10]).is_err());
        assert!(encap_ipv4(&[0u8; 10]).is_err());
    }
}

//! Differential equivalence harness for the dipopt optimizer.
//!
//! The contract `dip_verify::opt` promises — every rewrite is
//! behavior-preserving — is machine-checked here rather than argued: the
//! same packet sequence runs through two identically constructed routers,
//! one interpreting chains and one executing optimized plans, and every
//! observable must match byte-for-byte:
//!
//! * the verdict (including drop reasons and notification contents),
//! * the full packet buffer after processing (header rewrites, tags),
//! * router state (FIB/PIT/content-store effects, via `Debug` plus
//!   explicit PIT/CS entry counts).
//!
//! The harness is used three ways: by the `equivalence` integration suite
//! over the six protocol programs' seeded traces, by unit tests over the
//! optimization corpus, and by the dataplane's `ProgramCache` at admission
//! time in debug builds ([`differential_smoke`]).

use crate::router::DipRouter;
use dip_fnops::FnRegistry;
use dip_tables::{Port, Ticks};
use dip_wire::packet::DipRepr;
use dip_wire::triple::FnTriple;

/// Outcome of a differential run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivReport {
    /// Packets compared.
    pub packets: usize,
    /// How many were processed by an actually-optimized chain (the rest
    /// ran identical interpreted plans on both sides).
    pub optimized_verdicts: usize,
}

fn state_fingerprint(router: &DipRouter) -> String {
    let st = router.state();
    format!("{:?} pit={} cs={:?}", st, st.pit.len(), st.content_store.as_ref().map(|c| c.len()))
}

/// Runs `packets` through `baseline` (interpreted) and `optimized`
/// (dipopt-compiled) and checks byte-identical behavior per packet.
///
/// The two routers must be *identically constructed* — same node id,
/// secrets, tables, registry and config; this function only flips the
/// `optimize` bit on each side. Returns the first divergence as a
/// human-readable error.
pub fn differential_check<I>(
    mut baseline: DipRouter,
    mut optimized: DipRouter,
    packets: I,
) -> Result<EquivReport, String>
where
    I: IntoIterator<Item = (Vec<u8>, Port, Ticks)>,
{
    baseline.config_mut().optimize = false;
    optimized.config_mut().optimize = true;
    let mut report = EquivReport { packets: 0, optimized_verdicts: 0 };
    for (idx, (bytes, in_port, now)) in packets.into_iter().enumerate() {
        let mut a = bytes.clone();
        let mut b = bytes;
        let (va, sa) = baseline.process(&mut a, in_port, now);
        let (vb, sb) = optimized.process(&mut b, in_port, now);
        if va != vb {
            return Err(format!("packet {idx}: verdict diverged: {va:?} vs {vb:?}"));
        }
        if a != b {
            return Err(format!("packet {idx}: buffer bytes diverged after {va:?}"));
        }
        let (fa, fb) = (state_fingerprint(&baseline), state_fingerprint(&optimized));
        if fa != fb {
            return Err(format!("packet {idx}: router state diverged: {fa} vs {fb}"));
        }
        report.packets += 1;
        if sb.fns_executed != sa.fns_executed || sb.cost != sa.cost {
            // The optimized side really took a different plan.
            report.optimized_verdicts += 1;
        }
    }
    Ok(report)
}

/// Admission-time differential smoke: builds a small seeded corpus of
/// packets carrying the given program (random locations and payload, so
/// both malformed-field and live paths are exercised against empty
/// tables) and checks interpreted-vs-optimized equivalence with fresh
/// routers sharing `registry`.
///
/// Used by the dataplane's `ProgramCache` under `debug_assertions` as the
/// last line of defense before an optimized plan is cached.
pub fn differential_smoke(
    triples: &[FnTriple],
    loc_len: usize,
    parallel: bool,
    registry: &FnRegistry,
    seed: u64,
) -> Result<EquivReport, String> {
    let mut rng = dip_crypto::DetRng::seed_from_u64(seed);
    let mut packets = Vec::new();
    for i in 0..4u64 {
        let mut locations = vec![0u8; loc_len];
        for b in &mut locations {
            *b = rng.next_u64() as u8;
        }
        let mut repr = DipRepr { fns: triples.to_vec(), locations, ..Default::default() };
        repr.parallel = parallel;
        let payload = vec![rng.next_u64() as u8; 8];
        let bytes = repr
            .to_bytes(&payload)
            .map_err(|e| format!("smoke corpus construction failed: {e:?}"))?;
        packets.push((bytes, 0 as Port, i as Ticks));
    }
    let make = || {
        let mut r = DipRouter::new(0xd1f, [0x42; 16]).with_registry(registry.clone());
        // A content store so CS effects are comparable too.
        r.state_mut().content_store = Some(dip_tables::ContentStore::new(64));
        r
    };
    differential_check(make(), make(), packets)
}

//! Per-packet processing budgets (§2.4, *Security*).
//!
//! "The processing of the packet is dynamically customized according to the
//! FNs in the packet header, so we should prevent packet processing from
//! exhausting the router state. Enforcing a hard limit for packet
//! processing time and per-packet state consumption is enough to prevent
//! such attacks."
//!
//! Time is accounted in the same architecture units as the PISA cost model
//! (stages, lookups, cipher blocks, resubmits) so the budget is
//! deterministic and platform-independent.

use dip_fnops::OpCost;

/// Hard limits applied to one packet's FN chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcessingBudget {
    /// Maximum number of FNs executed per packet.
    pub max_fns: u32,
    /// Maximum total pipeline stages.
    pub max_stages: u32,
    /// Maximum total table lookups.
    pub max_table_lookups: u32,
    /// Maximum total cipher block invocations.
    pub max_cipher_blocks: u32,
    /// Maximum packet resubmissions.
    pub max_resubmits: u32,
}

impl Default for ProcessingBudget {
    fn default() -> Self {
        // Generous defaults: every paper protocol fits comfortably, an
        // adversarial 255-FN chain of MACs does not.
        ProcessingBudget {
            max_fns: 32,
            max_stages: 64,
            max_table_lookups: 64,
            max_cipher_blocks: 64,
            max_resubmits: 4,
        }
    }
}

impl ProcessingBudget {
    /// A budget that admits everything (for baselines/ablations).
    pub fn unlimited() -> Self {
        ProcessingBudget {
            max_fns: u32::MAX,
            max_stages: u32::MAX,
            max_table_lookups: u32::MAX,
            max_cipher_blocks: u32::MAX,
            max_resubmits: u32::MAX,
        }
    }
}

/// Running consumption against a [`ProcessingBudget`].
#[derive(Debug, Clone, Copy, Default)]
pub struct BudgetMeter {
    /// FNs executed so far.
    pub fns: u32,
    /// Accumulated cost.
    pub cost: OpCost,
}

impl BudgetMeter {
    /// A fresh meter.
    pub fn new() -> Self {
        BudgetMeter::default()
    }

    /// Charges one operation; returns `false` when the budget would be
    /// exceeded (the packet must be dropped, §2.4).
    #[must_use]
    pub fn charge(&mut self, budget: &ProcessingBudget, cost: OpCost) -> bool {
        let fns = self.fns + 1;
        let total = self.cost + cost;
        if fns > budget.max_fns
            || total.stages > budget.max_stages
            || total.table_lookups > budget.max_table_lookups
            || total.cipher_blocks > budget.max_cipher_blocks
            || total.resubmits > budget.max_resubmits
        {
            return false;
        }
        self.fns = fns;
        self.cost = total;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let b = ProcessingBudget::default();
        let mut m = BudgetMeter::new();
        assert!(m.charge(&b, OpCost::lookup(1, 1)));
        assert!(m.charge(&b, OpCost::cipher(2, 4, 0)));
        assert_eq!(m.fns, 2);
        assert_eq!(m.cost.stages, 3);
        assert_eq!(m.cost.cipher_blocks, 4);
    }

    #[test]
    fn fn_count_limit() {
        let b = ProcessingBudget { max_fns: 2, ..ProcessingBudget::unlimited() };
        let mut m = BudgetMeter::new();
        assert!(m.charge(&b, OpCost::stages(1)));
        assert!(m.charge(&b, OpCost::stages(1)));
        assert!(!m.charge(&b, OpCost::stages(1)));
        // A failed charge must not consume budget.
        assert_eq!(m.fns, 2);
    }

    #[test]
    fn cipher_limit_stops_mac_flood() {
        let b = ProcessingBudget::default();
        let mut m = BudgetMeter::new();
        let mac_cost = OpCost::cipher(2, 5, 0);
        let mut accepted = 0;
        while m.charge(&b, mac_cost) {
            accepted += 1;
            assert!(accepted < 100, "budget never enforced");
        }
        assert!(accepted <= 12, "cipher budget admits too much: {accepted}");
    }

    #[test]
    fn unlimited_admits_everything() {
        let b = ProcessingBudget::unlimited();
        let mut m = BudgetMeter::new();
        for _ in 0..1000 {
            assert!(m.charge(&b, OpCost::cipher(10, 10, 1)));
        }
    }

    #[test]
    fn default_budget_fits_paper_protocols() {
        // The heaviest paper chain is NDN+OPT: PIT + parm + MAC + mark.
        let b = ProcessingBudget::default();
        let mut m = BudgetMeter::new();
        assert!(m.charge(&b, OpCost::lookup(1, 1))); // PIT
        assert!(m.charge(&b, OpCost::cipher(1, 3, 0))); // parm
        assert!(m.charge(&b, OpCost::cipher(2, 5, 0))); // MAC over 52B
        assert!(m.charge(&b, OpCost::cipher(1, 2, 0))); // mark
    }
}

//! DIP-in-IPv6 tunneling across DIP-agnostic domains (§2.4).
//!
//! "In the early stage of deployment, two DIP domains may not be directly
//! connected. One could use tunneling technology \[6, 8\] to build end-to-end
//! path across DIP-agnostic domains." — the standard encapsulation play:
//! the DIP packet rides as the payload of a plain IPv6 packet between the
//! two DIP islands' tunnel endpoints; legacy routers in between forward on
//! the outer header only.

use dip_wire::ipv6::{Ipv6Addr, Ipv6Repr, IPV6_HEADER_LEN};
use dip_wire::{DipPacket, Result, WireError};

/// Protocol number we use for DIP-in-IPv6 (from the experimental range).
pub const DIP_IN_IPV6_PROTO: u8 = 0xFC;

/// Wraps a DIP packet for transit between tunnel endpoints `src` → `dst`.
pub fn encap(dip_packet: &[u8], src: Ipv6Addr, dst: Ipv6Addr, hop_limit: u8) -> Result<Vec<u8>> {
    // Refuse to tunnel garbage: the far endpoint should never decapsulate
    // something that is not a DIP packet.
    DipPacket::new_checked(dip_packet)?;
    Ipv6Repr { src, dst, next_header: DIP_IN_IPV6_PROTO, hop_limit, payload_len: dip_packet.len() }
        .to_bytes(dip_packet)
}

/// Unwraps at the far tunnel endpoint, returning the inner DIP packet.
pub fn decap(ipv6_packet: &[u8]) -> Result<Vec<u8>> {
    let outer = Ipv6Repr::parse(ipv6_packet)?;
    if outer.next_header != DIP_IN_IPV6_PROTO {
        return Err(WireError::Malformed("not a DIP-in-IPv6 tunnel packet"));
    }
    let inner = &ipv6_packet[IPV6_HEADER_LEN..];
    DipPacket::new_checked(inner)?;
    Ok(inner.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dip_wire::packet::DipRepr;
    use dip_wire::triple::{FnKey, FnTriple};

    fn dip_pkt() -> Vec<u8> {
        DipRepr {
            fns: vec![FnTriple::router(0, 32, FnKey::Fib)],
            locations: vec![1, 2, 3, 4],
            ..Default::default()
        }
        .to_bytes(b"inner")
        .unwrap()
    }

    fn a() -> Ipv6Addr {
        Ipv6Addr::new([0xfd01, 0, 0, 0, 0, 0, 0, 1])
    }

    fn b() -> Ipv6Addr {
        Ipv6Addr::new([0xfd02, 0, 0, 0, 0, 0, 0, 1])
    }

    #[test]
    fn encap_decap_roundtrip() {
        let inner = dip_pkt();
        let outer = encap(&inner, a(), b(), 64).unwrap();
        assert_eq!(outer.len(), IPV6_HEADER_LEN + inner.len());
        assert_eq!(decap(&outer).unwrap(), inner);
    }

    #[test]
    fn outer_header_is_plain_ipv6() {
        let outer = encap(&dip_pkt(), a(), b(), 9).unwrap();
        let repr = Ipv6Repr::parse(&outer).unwrap();
        assert_eq!(repr.src, a());
        assert_eq!(repr.dst, b());
        assert_eq!(repr.hop_limit, 9);
        assert_eq!(repr.next_header, DIP_IN_IPV6_PROTO);
    }

    #[test]
    fn decap_rejects_non_tunnel_traffic() {
        let plain = Ipv6Repr { src: a(), dst: b(), next_header: 17, hop_limit: 64, payload_len: 0 }
            .to_bytes(b"udp")
            .unwrap();
        assert!(decap(&plain).is_err());
    }

    #[test]
    fn refuses_to_tunnel_garbage() {
        assert!(encap(&[0u8; 3], a(), b(), 64).is_err());
    }

    #[test]
    fn decap_validates_inner_packet() {
        let mut outer = encap(&dip_pkt(), a(), b(), 64).unwrap();
        outer[IPV6_HEADER_LEN] = 0xf0; // corrupt inner version nibble
        assert!(decap(&outer).is_err());
    }
}

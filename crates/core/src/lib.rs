//! # dip-core — DIP node logic
//!
//! The pieces of §2.3–2.4 that sit *around* the FN primitive:
//!
//! * [`router::DipRouter`] — the per-hop packet processing loop of
//!   **Algorithm 1**: parse the basic header, parse the FN triples, extract
//!   the locations, skip host-tagged FNs, dispatch the rest through the
//!   [`dip_fnops::FnRegistry`], and combine the resulting actions into a
//!   routing verdict;
//! * [`chain`] — the parse/compile/execute split behind `process`:
//!   [`chain::ParsedPacket`] (per-packet) and [`chain::CompiledChain`]
//!   (per-program, cacheable) let a batching dataplane amortize registry
//!   resolution and the §2.2 parallel plan across packets;
//! * [`host`] — destination-side execution of host-tagged FNs (`F_ver`)
//!   and source-side sanity helpers;
//! * [`budget`] — the §2.4 defense "enforcing a hard limit for packet
//!   processing time and per-packet state consumption";
//! * [`control`] — the ICMP-like *FN unsupported* notification of §2.4;
//! * [`border`] — backward compatibility: encapsulating legacy IPv4/IPv6
//!   headers as FN locations at the inbound border router and stripping
//!   the DIP header at the outbound one;
//! * [`tunnel`] — DIP-in-IPv6 tunneling across DIP-agnostic domains
//!   (incremental deployment, §2.4);
//! * [`bootstrap`] — the DHCP-like FN discovery of §2.3 and the
//!   BGP-community-style propagation of per-AS FN capability sets;
//! * [`stack`] — the host endpoint ([`stack::DipHost`]): bootstrap,
//!   protocol planning against learned capabilities, host-FN execution.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bootstrap;
pub mod border;
pub mod budget;
pub mod chain;
pub mod control;
pub mod equiv;
pub mod host;
pub mod metrics;
pub mod router;
pub mod stack;
pub mod tunnel;

pub use budget::{BudgetMeter, ProcessingBudget};
pub use chain::{parse_packet, CompiledChain, OptSummary, ParsedPacket};
pub use control::ControlMessage;
pub use equiv::{differential_check, differential_smoke, EquivReport};
pub use metrics::RouterMetrics;
pub use router::{DipRouter, ProcessStats, RouterConfig, UnknownFnPolicy, Verdict};
pub use stack::{DipHost, ProtocolId};

//! FN discovery and capability propagation (§2.3).
//!
//! "After the host is connected to an accessed AS, it uses bootstrapping
//! mechanisms (similar to DHCP) to get the set of available FNs." —
//! [`FnDiscover`]/[`FnOffer`] are that exchange.
//!
//! "One readily deployable mechanism to globally propagate supported FNs
//! among ASes is relying on BGP communities" — [`CapabilityMap`] models the
//! propagated per-AS capability sets and answers the planning question a
//! host actually has: *which FNs can I use end-to-end along this AS path?*

use dip_wire::error::{ensure_len, Result, WireError};
use dip_wire::triple::FnKey;
use std::collections::{BTreeSet, HashMap};

/// A host's request for the available FN set (DHCP-DISCOVER analogue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FnDiscover {
    /// Random transaction id echoed in the offer.
    pub xid: u32,
}

/// The access router's reply listing supported operation keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnOffer {
    /// Echoed transaction id.
    pub xid: u32,
    /// The AS advertising these capabilities.
    pub as_id: u32,
    /// Supported operation keys, ascending.
    pub keys: Vec<u16>,
}

impl FnDiscover {
    /// Serializes to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![0x01];
        out.extend_from_slice(&self.xid.to_be_bytes());
        out
    }

    /// Parses from wire bytes.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        ensure_len(buf, 5)?;
        if buf[0] != 0x01 {
            return Err(WireError::Malformed("not an FnDiscover"));
        }
        Ok(FnDiscover { xid: u32::from_be_bytes([buf[1], buf[2], buf[3], buf[4]]) })
    }
}

impl FnOffer {
    /// Builds an offer from a registry's supported set.
    pub fn from_registry(xid: u32, as_id: u32, registry: &dip_fnops::FnRegistry) -> Self {
        FnOffer {
            xid,
            as_id,
            keys: registry.supported_keys().iter().map(|k| k.to_wire()).collect(),
        }
    }

    /// Serializes to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![0x02];
        out.extend_from_slice(&self.xid.to_be_bytes());
        out.extend_from_slice(&self.as_id.to_be_bytes());
        out.push(self.keys.len() as u8);
        for k in &self.keys {
            out.extend_from_slice(&k.to_be_bytes());
        }
        out
    }

    /// Parses from wire bytes.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        ensure_len(buf, 10)?;
        if buf[0] != 0x02 {
            return Err(WireError::Malformed("not an FnOffer"));
        }
        let n = usize::from(buf[9]);
        ensure_len(buf, 10 + 2 * n)?;
        let keys = (0..n).map(|i| u16::from_be_bytes([buf[10 + 2 * i], buf[11 + 2 * i]])).collect();
        Ok(FnOffer {
            xid: u32::from_be_bytes([buf[1], buf[2], buf[3], buf[4]]),
            as_id: u32::from_be_bytes([buf[5], buf[6], buf[7], buf[8]]),
            keys,
        })
    }

    /// The offered keys as [`FnKey`]s.
    pub fn fn_keys(&self) -> Vec<FnKey> {
        self.keys.iter().map(|&k| FnKey::from_wire(k)).collect()
    }
}

/// Propagated per-AS FN capability sets (the BGP-communities substitute).
#[derive(Debug, Clone, Default)]
pub struct CapabilityMap {
    caps: HashMap<u32, BTreeSet<u16>>,
}

impl CapabilityMap {
    /// An empty map.
    pub fn new() -> Self {
        CapabilityMap::default()
    }

    /// Records (or replaces) an AS's advertised capability set.
    pub fn announce(&mut self, as_id: u32, keys: impl IntoIterator<Item = u16>) {
        self.caps.insert(as_id, keys.into_iter().collect());
    }

    /// Records an AS's capabilities from its bootstrap offer.
    pub fn announce_offer(&mut self, offer: &FnOffer) {
        self.announce(offer.as_id, offer.keys.iter().copied());
    }

    /// Withdraws an AS (e.g. on session teardown).
    pub fn withdraw(&mut self, as_id: u32) {
        self.caps.remove(&as_id);
    }

    /// The advertised set of one AS, if known.
    pub fn capabilities(&self, as_id: u32) -> Option<&BTreeSet<u16>> {
        self.caps.get(&as_id)
    }

    /// Whether `as_id` supports `key`.
    pub fn supports(&self, as_id: u32, key: FnKey) -> bool {
        self.caps.get(&as_id).is_some_and(|s| s.contains(&key.to_wire()))
    }

    /// The FN keys usable end-to-end across every AS of `path` — the
    /// intersection of all advertised sets. Unknown ASes support nothing.
    pub fn end_to_end(&self, path: &[u32]) -> BTreeSet<u16> {
        let mut iter = path.iter();
        let Some(first) = iter.next() else {
            return BTreeSet::new();
        };
        let mut acc = self.caps.get(first).cloned().unwrap_or_default();
        for as_id in iter {
            let set = self.caps.get(as_id).cloned().unwrap_or_default();
            acc = acc.intersection(&set).copied().collect();
        }
        acc
    }

    /// Whether a *participation-required* FN (e.g. OPT's chain) can run on
    /// `path`: every AS must support it.
    pub fn path_supports(&self, path: &[u32], key: FnKey) -> bool {
        !path.is_empty() && path.iter().all(|&a| self.supports(a, key))
    }

    /// A registry modelling `as_id`'s advertised capability set, for the
    /// static verifier's per-hop registry pass. Unknown ASes (and keys
    /// outside the standard module set) yield an empty/partial registry —
    /// exactly the conservative reading of a missing BGP announcement.
    pub fn registry_for(&self, as_id: u32) -> dip_fnops::FnRegistry {
        let keys: Vec<FnKey> = self
            .caps
            .get(&as_id)
            .map(|s| s.iter().map(|&k| FnKey::from_wire(k)).collect())
            .unwrap_or_default();
        dip_fnops::FnRegistry::with_keys(&keys)
    }

    /// Per-hop registries for an AS path — the bridge from propagated
    /// capabilities (§2.3) to [`dip_verify`]'s registry pass.
    pub fn path_registries(&self, path: &[u32]) -> Vec<dip_fnops::FnRegistry> {
        path.iter().map(|&a| self.registry_for(a)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dip_fnops::FnRegistry;

    #[test]
    fn discover_roundtrip() {
        let d = FnDiscover { xid: 0xabcd_1234 };
        assert_eq!(FnDiscover::decode(&d.encode()).unwrap(), d);
        assert!(FnDiscover::decode(&[0x02, 0, 0, 0, 0]).is_err());
    }

    #[test]
    fn offer_roundtrip() {
        let o = FnOffer { xid: 7, as_id: 65001, keys: vec![1, 2, 4, 5] };
        assert_eq!(FnOffer::decode(&o.encode()).unwrap(), o);
    }

    #[test]
    fn offer_from_standard_registry_lists_twelve_keys() {
        let o = FnOffer::from_registry(1, 65001, &FnRegistry::standard());
        assert_eq!(o.keys.len(), 12);
        assert!(o.fn_keys().contains(&FnKey::Fib));
        assert!(o.fn_keys().contains(&FnKey::Pass));
    }

    #[test]
    fn offer_decode_rejects_truncation() {
        let o = FnOffer { xid: 7, as_id: 65001, keys: vec![1, 2, 3] };
        let enc = o.encode();
        assert!(FnOffer::decode(&enc[..enc.len() - 1]).is_err());
    }

    #[test]
    fn end_to_end_is_the_intersection() {
        let mut m = CapabilityMap::new();
        m.announce(1, [1, 2, 3, 4, 5, 6, 7, 8]);
        m.announce(2, [1, 2, 4, 5, 6, 7, 8]);
        m.announce(3, [1, 4, 6, 7, 8, 12]);
        let e2e = m.end_to_end(&[1, 2, 3]);
        assert_eq!(e2e, BTreeSet::from([1, 4, 6, 7, 8]));
    }

    #[test]
    fn unknown_as_breaks_the_path() {
        let mut m = CapabilityMap::new();
        m.announce(1, [6, 7, 8]);
        assert!(m.path_supports(&[1], FnKey::Mac));
        assert!(!m.path_supports(&[1, 99], FnKey::Mac));
        assert!(m.end_to_end(&[1, 99]).is_empty());
        assert!(!m.path_supports(&[], FnKey::Mac));
    }

    #[test]
    fn withdraw_removes_capabilities() {
        let mut m = CapabilityMap::new();
        m.announce(1, [7]);
        assert!(m.supports(1, FnKey::Mac));
        m.withdraw(1);
        assert!(!m.supports(1, FnKey::Mac));
        assert!(m.capabilities(1).is_none());
    }

    #[test]
    fn registries_mirror_announced_capabilities() {
        let mut m = CapabilityMap::new();
        m.announce(1, [FnKey::Fib.to_wire(), FnKey::Pit.to_wire()]);
        let regs = m.path_registries(&[1, 99]);
        assert_eq!(regs.len(), 2);
        assert!(regs[0].supports(FnKey::Fib) && regs[0].supports(FnKey::Pit));
        assert!(!regs[0].supports(FnKey::Mac));
        assert!(regs[1].is_empty(), "unknown AS must advertise nothing");
    }

    #[test]
    fn bootstrap_flow_host_learns_fns() {
        // Host side of §2.3: discover -> offer -> usable key set.
        let registry = FnRegistry::with_keys(&[FnKey::Fib, FnKey::Pit]);
        let d = FnDiscover { xid: 99 };
        let wire = d.encode();
        // Access router:
        let received = FnDiscover::decode(&wire).unwrap();
        let offer = FnOffer::from_registry(received.xid, 65010, &registry);
        // Host:
        let parsed = FnOffer::decode(&offer.encode()).unwrap();
        assert_eq!(parsed.xid, 99);
        assert_eq!(parsed.fn_keys(), vec![FnKey::Fib, FnKey::Pit]);
    }
}

//! Compiled FN chains — resolve a packet's program once, run it many times.
//!
//! Algorithm 1 does three kinds of work per packet: *parsing* (basic
//! header, triples, locations — inherently per-packet), *resolution*
//! (registry lookups, per-op costs, the participation policy, the §2.2
//! parallel plan — a function of the FN chain alone), and *execution*
//! (running the resolved operations against this packet's bytes and the
//! router state). [`DipRouter::process`] folds all three together, which
//! is the right shape for a single packet but wasteful for a dataplane:
//! real traffic is a small number of *programs* (one per protocol) carried
//! by millions of packets.
//!
//! This module splits the phases apart so a batching runtime can amortize
//! resolution across every packet that carries the same program:
//!
//! * [`parse_packet`] — the per-packet half of lines 1–3 of Algorithm 1;
//! * [`CompiledChain::compile`] — resolution: registry lookups pinned to
//!   `Arc<dyn FieldOp>`s, pre-computed [`OpCost`]s, the unknown-FN policy
//!   decision, and (optionally) the parallel plan depth from
//!   [`dip_fnops::parallel::plan`];
//! * [`DipRouter::process_parsed`] — execution of a compiled chain.
//!
//! `process` itself is now `parse → compile → execute`, so the two paths
//! cannot drift: a per-packet `process` and a cached-chain
//! `process_parsed` run byte-identical semantics by construction.
//!
//! [`DipRouter::process`]: crate::router::DipRouter::process
//! [`DipRouter::process_parsed`]: crate::router::DipRouter::process_parsed

use crate::router::{RouterConfig, UnknownFnPolicy};
use dip_fnops::parallel::plan;
use dip_fnops::{FieldOp, FnRegistry, HoistState, OpCost};
use dip_verify::opt::{analyze, ProgramFacts, Rewrite};
use dip_verify::FnProgram;
use dip_wire::triple::FnTriple;
use dip_wire::{DipPacket, BASIC_HEADER_LEN, FN_TRIPLE_LEN};
use std::sync::{Arc, OnceLock};

/// The per-packet parse result: lines 1–3 of Algorithm 1.
#[derive(Debug, Clone)]
pub struct ParsedPacket {
    /// The FN triples, in chain order (host-tagged ones included).
    pub triples: Vec<FnTriple>,
    /// Byte offset of the FN locations area within the packet.
    pub loc_start: usize,
    /// Total header length (basic + triples + locations).
    pub header_len: usize,
    /// The packet parameter's parallel flag (§2.2).
    pub parallel: bool,
    /// Length of the FN locations area in bytes (`FN_LocLen`).
    pub loc_len: usize,
}

impl ParsedPacket {
    /// The raw bytes that determine this packet's *program*: the FN triple
    /// region of `buf` (which this packet was parsed from). Two packets
    /// with identical program bytes, `loc_len` and parallel flag compile
    /// to the same [`CompiledChain`] — the cache key a batching dataplane
    /// uses.
    pub fn program_bytes<'a>(&self, buf: &'a [u8]) -> &'a [u8] {
        &buf[BASIC_HEADER_LEN..self.loc_start]
    }
}

/// Parses the basic header, FN triples and locations geometry of `buf`.
///
/// Returns `None` for anything malformed (truncated header, bad triple
/// count, a triple whose target field does not fit the locations area) —
/// exactly the conditions `process` maps to
/// [`DropReason::MalformedField`](dip_fnops::DropReason::MalformedField).
pub fn parse_packet(buf: &[u8]) -> Option<ParsedPacket> {
    let pkt = DipPacket::new_checked(buf).ok()?;
    let hdr = pkt.basic_header().ok()?;
    let triples = pkt.triples().ok()?;
    let loc_len = usize::from(hdr.param.fn_loc_len);
    for t in &triples {
        if !t.fits(loc_len) {
            return None;
        }
    }
    let loc_start = BASIC_HEADER_LEN + triples.len() * FN_TRIPLE_LEN;
    Some(ParsedPacket {
        triples,
        loc_start,
        header_len: pkt.header_len(),
        parallel: hdr.param.parallel,
        loc_len,
    })
}

/// One resolved step of a compiled chain, aligned index-for-index with the
/// packet's FN triples.
pub(crate) enum ChainEntry {
    /// Host-tagged FN: skipped by routers (Algorithm 1 line 5).
    Host,
    /// No module installed for this key.
    Unsupported {
        /// The wire encoding of the missing key.
        key: u16,
        /// Whether the router must send an FN-unsupported notification
        /// (§2.4) instead of silently skipping.
        notify: bool,
    },
    /// A resolved, costed operation.
    Op {
        /// The selecting triple (target field + key).
        triple: FnTriple,
        /// The operation module, pinned so execution never re-consults the
        /// registry.
        op: Arc<dyn FieldOp>,
        /// Pre-computed invocation cost (a function of the field length
        /// only).
        cost: OpCost,
    },
}

/// One unit of a dipopt-optimized execution plan.
///
/// The plan replays the *original* budget-charge sequence exactly —
/// eliminated operations leave a charge-only residue at their original
/// position — so the budget meter makes identical drop decisions on the
/// optimized and interpreted paths. Only the timing-model cost (`model`)
/// reflects the optimization.
pub(crate) enum OptUnit {
    /// Host-tagged FN: skipped, counted.
    Host,
    /// No module installed; `index` preserves the original chain position
    /// for the FN-unsupported notification.
    Unsupported {
        /// Wire encoding of the missing key.
        key: u16,
        /// Whether to notify rather than skip.
        notify: bool,
        /// Original chain index (goes into the notification verbatim).
        index: usize,
    },
    /// Residue of an eliminated operation: charge the budget, run nothing.
    Charge {
        /// The eliminated op's original cost.
        cost: OpCost,
    },
    /// An operation that still executes.
    Run {
        /// The selecting triple.
        triple: FnTriple,
        /// The operation module.
        op: Arc<dyn FieldOp>,
        /// Original cost, charged against the budget (replayed accounting).
        charge: OpCost,
        /// Optimized timing-model cost: fused/hoisted, zero for non-lead
        /// members of a fused group (the lead carries the merged cost).
        model: OpCost,
        /// Index into the plan's hoist slots when setup was hoisted.
        hoist: Option<usize>,
    },
}

/// Per-rewrite-kind counts, surfaced to dataplane telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptSummary {
    /// Operations removed from the per-packet path.
    pub ops_eliminated: u32,
    /// Adjacent-pair fusions applied.
    pub fusions: u32,
    /// Packet-invariant setups hoisted to once per chain.
    pub hoists: u32,
}

/// A dipopt-optimized execution plan attached to a compiled chain.
pub(crate) struct OptimizedPlan {
    pub(crate) units: Vec<OptUnit>,
    /// Lazily materialized hoisted state, one slot per hoisted op. Built on
    /// first execution from the router's state; see the validity note on
    /// [`CompiledChain`].
    pub(crate) hoists: Vec<OnceLock<Option<HoistState>>>,
    pub(crate) summary: OptSummary,
}

/// A fully resolved FN chain: registry lookups, costs, the unknown-FN
/// policy, and the parallel plan, computed once for all packets carrying
/// the same program.
///
/// A chain is only valid for the `(registry, config)` pair it was compiled
/// against — callers that mutate either must recompile (the dataplane's
/// program cache is per-worker for exactly this reason). A chain compiled
/// with [`CompiledChain::compile_optimized`] additionally caches hoisted
/// state derived from the executing router's secrets, so it must not be
/// shared across routers or across secret rotation.
pub struct CompiledChain {
    pub(crate) entries: Vec<ChainEntry>,
    /// Number of router-executed (non-host) triples.
    pub(crate) router_fns: usize,
    /// Plan depth under the §2.2 modular-parallelism planner, when
    /// requested at compile time.
    pub(crate) parallel_depth: Option<usize>,
    /// The dipopt plan, when compiled via `compile_optimized` and at least
    /// one rewrite was proven safe.
    pub(crate) optimized: Option<OptimizedPlan>,
}

impl CompiledChain {
    /// Resolves `triples` against `registry` under `config`.
    ///
    /// `compute_plan` controls whether the parallel-execution plan is
    /// derived (callers pass the packet's parallel flag AND the router's
    /// `parallel_enabled`; sequential packets never pay for planning).
    pub fn compile(
        triples: &[FnTriple],
        registry: &FnRegistry,
        config: &RouterConfig,
        compute_plan: bool,
    ) -> Self {
        let mut entries = Vec::with_capacity(triples.len());
        for t in triples {
            if t.host {
                entries.push(ChainEntry::Host);
                continue;
            }
            match registry.get(t.key) {
                Some(op) => entries.push(ChainEntry::Op {
                    triple: *t,
                    cost: op.cost(t.field_len),
                    op: Arc::clone(op),
                }),
                None => {
                    let key = t.key.to_wire();
                    let notify = config.participation_keys.contains(&key)
                        || config.unknown_fn_policy == UnknownFnPolicy::Notify;
                    entries.push(ChainEntry::Unsupported { key, notify });
                }
            }
        }
        let router_triples: Vec<FnTriple> = triples.iter().filter(|t| !t.host).copied().collect();
        let parallel_depth = compute_plan.then(|| plan(&router_triples, registry).depth());
        CompiledChain { entries, router_fns: router_triples.len(), parallel_depth, optimized: None }
    }

    /// Like [`compile`](CompiledChain::compile), then runs the dipopt
    /// analysis and, when at least one rewrite is proven safe, attaches an
    /// optimized execution plan. Returns the chain together with the
    /// analysis facts (for telemetry / introspection).
    ///
    /// `loc_len` and `parallel` come from the parsed packet and complete
    /// the [`FnProgram`] the analysis runs on.
    pub fn compile_optimized(
        triples: &[FnTriple],
        registry: &FnRegistry,
        config: &RouterConfig,
        compute_plan: bool,
        loc_len: usize,
        parallel: bool,
    ) -> (Self, ProgramFacts) {
        let mut chain = Self::compile(triples, registry, config, compute_plan);
        let facts = analyze(&FnProgram::new(triples.to_vec(), loc_len, parallel), registry);
        if facts.optimizes() {
            chain.optimized = Some(Self::build_plan(&chain, &facts));
        }
        (chain, facts)
    }

    fn build_plan(chain: &CompiledChain, facts: &ProgramFacts) -> OptimizedPlan {
        let n = chain.entries.len();
        let mut eliminated = vec![false; n];
        let mut model_override: Vec<Option<OpCost>> = vec![None; n];
        let mut hoist_slot: Vec<Option<usize>> = vec![None; n];
        // fused_with[j] = Some(i) links j to the previous member of its group.
        let mut fused_with: Vec<Option<usize>> = vec![None; n];
        let mut hoist_count = 0usize;
        for rw in &facts.rewrites {
            match rw {
                Rewrite::EliminateRedundantParse { parse, into, fused_model } => {
                    eliminated[*parse] = true;
                    model_override[*into] = Some(*fused_model);
                }
                Rewrite::EliminateDeadKeyWrite { index } => eliminated[*index] = true,
                Rewrite::FuseAdjacent { first, second } => fused_with[*second] = Some(*first),
                Rewrite::HoistKeySchedule { index, hoisted_model } => {
                    model_override[*index] = Some(*hoisted_model);
                    hoist_slot[*index] = Some(hoist_count);
                    hoist_count += 1;
                }
            }
        }
        // Resolve fused groups: the lead (a member with no predecessor)
        // carries the fused cost of the whole group; later members go to
        // zero in the timing model. Execution order is untouched.
        let mut model: Vec<OpCost> = (0..n)
            .map(|i| match &chain.entries[i] {
                ChainEntry::Op { cost, .. } => model_override[i].unwrap_or(*cost),
                _ => OpCost::default(),
            })
            .collect();
        for j in 0..n {
            if let Some(i) = fused_with[j] {
                // Walk back to the group lead.
                let mut lead = i;
                while let Some(prev) = fused_with[lead] {
                    lead = prev;
                }
                model[lead] = model[lead].fuse(model[j]);
                model[j] = OpCost::default();
            }
        }
        let units = chain
            .entries
            .iter()
            .enumerate()
            .map(|(i, entry)| match entry {
                ChainEntry::Host => OptUnit::Host,
                ChainEntry::Unsupported { key, notify } => {
                    OptUnit::Unsupported { key: *key, notify: *notify, index: i }
                }
                ChainEntry::Op { triple, op, cost } => {
                    if eliminated[i] {
                        OptUnit::Charge { cost: *cost }
                    } else {
                        OptUnit::Run {
                            triple: *triple,
                            op: Arc::clone(op),
                            charge: *cost,
                            model: model[i],
                            hoist: hoist_slot[i],
                        }
                    }
                }
            })
            .collect();
        OptimizedPlan {
            units,
            hoists: (0..hoist_count).map(|_| OnceLock::new()).collect(),
            summary: OptSummary {
                ops_eliminated: facts.ops_eliminated() as u32,
                fusions: facts.fusions() as u32,
                hoists: facts.hoists() as u32,
            },
        }
    }

    /// Whether a dipopt plan is attached.
    pub fn is_optimized(&self) -> bool {
        self.optimized.is_some()
    }

    /// Per-rewrite-kind counts of the attached plan, if any.
    pub fn opt_summary(&self) -> Option<OptSummary> {
        self.optimized.as_ref().map(|p| p.summary)
    }

    /// Number of chain steps (= number of FN triples, host ones included).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of router-executed (non-host) steps.
    pub fn router_fns(&self) -> usize {
        self.router_fns
    }

    /// The sequential depth this chain reports when the parallel flag is
    /// clear, or the planned depth when it was computed.
    pub fn plan_depth(&self, parallel: bool) -> usize {
        match (parallel, self.parallel_depth) {
            (true, Some(d)) => d,
            _ => self.router_fns,
        }
    }
}

impl std::fmt::Debug for CompiledChain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledChain")
            .field("len", &self.entries.len())
            .field("router_fns", &self.router_fns)
            .field("parallel_depth", &self.parallel_depth)
            .field("optimized", &self.opt_summary())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dip_wire::packet::DipRepr;
    use dip_wire::triple::FnKey;

    fn dip32_repr() -> DipRepr {
        DipRepr {
            fns: vec![
                FnTriple::router(0, 32, FnKey::Match32),
                FnTriple::router(32, 32, FnKey::Source),
            ],
            locations: vec![10, 0, 0, 1, 192, 168, 0, 1],
            ..Default::default()
        }
    }

    #[test]
    fn parse_matches_repr_geometry() {
        let repr = dip32_repr();
        let buf = repr.to_bytes(b"payload").unwrap();
        let parsed = parse_packet(&buf).expect("well-formed");
        assert_eq!(parsed.triples, repr.fns);
        assert_eq!(parsed.header_len, repr.header_len());
        assert_eq!(parsed.loc_len, 8);
        assert!(!parsed.parallel);
        assert_eq!(parsed.loc_start + parsed.loc_len, parsed.header_len);
    }

    #[test]
    fn parse_rejects_truncation_and_bad_fit() {
        let buf = dip32_repr().to_bytes(&[]).unwrap();
        assert!(parse_packet(&buf[..5]).is_none());
        // Shrink the advertised locations area so the second triple's
        // [32, 64) target field no longer fits (builders refuse to
        // construct this, so corrupt the packet parameter in place).
        let mut bad = dip32_repr().to_bytes(&[]).unwrap();
        let param =
            dip_wire::basic::PacketParameter { fn_loc_len: 2, ..Default::default() }.to_wire();
        bad[4..6].copy_from_slice(&param.unwrap().to_be_bytes());
        assert!(parse_packet(&bad).is_none());
    }

    #[test]
    fn program_bytes_identical_for_same_program() {
        let a = dip32_repr().to_bytes(b"aaaa").unwrap();
        let mut other = dip32_repr();
        other.locations = vec![99, 99, 99, 99, 1, 2, 3, 4]; // different flow
        let b = other.to_bytes(b"bbbb").unwrap();
        let pa = parse_packet(&a).unwrap();
        let pb = parse_packet(&b).unwrap();
        assert_eq!(pa.program_bytes(&a), pb.program_bytes(&b));
    }

    #[test]
    fn compile_resolves_costs_and_policy() {
        let registry = FnRegistry::standard();
        let config = RouterConfig::default();
        let triples = vec![
            FnTriple::router(0, 32, FnKey::Match32),
            FnTriple::host(0, 32, FnKey::Ver),
            FnTriple::router(128, 128, FnKey::Parm),
            FnTriple::router(0, 8, FnKey::Other(0x300)),
        ];
        let chain = CompiledChain::compile(&triples, &registry, &config, false);
        assert_eq!(chain.len(), 4);
        assert_eq!(chain.router_fns(), 3);
        assert!(matches!(chain.entries[1], ChainEntry::Host));
        // 0x300 is not a participation key and the default policy skips.
        assert!(matches!(chain.entries[3], ChainEntry::Unsupported { notify: false, .. }));

        // A registry lacking Parm (a participation key) must notify.
        let bare = FnRegistry::with_keys(&[FnKey::Match32]);
        let chain = CompiledChain::compile(&triples, &bare, &config, false);
        assert!(matches!(chain.entries[2], ChainEntry::Unsupported { notify: true, .. }));
    }

    #[test]
    fn compile_optimized_builds_replayed_charges() {
        let registry = FnRegistry::standard();
        let config = RouterConfig::default();
        // XIA program: the F_DAG parse is eliminated but still charged.
        let triples =
            vec![FnTriple::router(0, 720, FnKey::Dag), FnTriple::router(0, 720, FnKey::Intent)];
        let (chain, facts) =
            CompiledChain::compile_optimized(&triples, &registry, &config, false, 90, false);
        assert!(facts.optimizes());
        assert!(chain.is_optimized());
        let plan = chain.optimized.as_ref().unwrap();
        assert_eq!(plan.units.len(), 2);
        let dag_cost = registry.get(FnKey::Dag).unwrap().cost(720);
        assert!(matches!(&plan.units[0], OptUnit::Charge { cost } if *cost == dag_cost));
        match &plan.units[1] {
            OptUnit::Run { charge, model, hoist, .. } => {
                assert_eq!(*charge, registry.get(FnKey::Intent).unwrap().cost(720));
                assert_eq!(*model, OpCost::lookup(1, 2));
                assert!(hoist.is_none());
            }
            _ => panic!("second unit must run"),
        }
        assert_eq!(
            chain.opt_summary().unwrap(),
            OptSummary { ops_eliminated: 1, fusions: 0, hoists: 0 }
        );
    }

    #[test]
    fn compile_optimized_fuses_and_hoists() {
        let registry = FnRegistry::standard();
        let config = RouterConfig::default();
        // dip32: disjoint readers fuse — the lead carries the merged model.
        let triples =
            vec![FnTriple::router(0, 32, FnKey::Match32), FnTriple::router(32, 32, FnKey::Source)];
        let (chain, _) =
            CompiledChain::compile_optimized(&triples, &registry, &config, false, 8, false);
        let plan = chain.optimized.as_ref().unwrap();
        match (&plan.units[0], &plan.units[1]) {
            (OptUnit::Run { model: lead, .. }, OptUnit::Run { model: member, .. }) => {
                // lookup(1,1) fused with stages(1): shared stage, one lookup.
                assert_eq!(*lead, OpCost::lookup(1, 1));
                assert_eq!(*member, OpCost::default());
            }
            _ => panic!("both units must run"),
        }

        // Lone OPT derivation chain with a consumer: parm survives and is
        // hoisted with one lazy slot.
        let triples = vec![
            FnTriple::router(128, 128, FnKey::Parm),
            FnTriple::router(0, 416, FnKey::Mac),
            FnTriple::router(288, 128, FnKey::Mark),
        ];
        let (chain, facts) =
            CompiledChain::compile_optimized(&triples, &registry, &config, false, 68, false);
        assert_eq!(facts.hoists(), 1);
        let plan = chain.optimized.as_ref().unwrap();
        assert_eq!(plan.hoists.len(), 1);
        match &plan.units[0] {
            OptUnit::Run { charge, model, hoist, .. } => {
                assert_eq!(*charge, OpCost::cipher(1, 3, 0), "budget replays the original");
                assert_eq!(*model, OpCost::cipher(1, 2, 0), "timing model sees the hoist");
                assert_eq!(*hoist, Some(0));
            }
            _ => panic!("parm must run"),
        }
    }

    #[test]
    fn compile_optimized_leaves_unoptimizable_programs_alone() {
        let registry = FnRegistry::standard();
        let config = RouterConfig::default();
        for case in dip_verify::optimization_corpus() {
            let (chain, facts) = CompiledChain::compile_optimized(
                &case.program.fns,
                &registry,
                &config,
                false,
                case.program.loc_len,
                case.program.parallel,
            );
            assert!(!facts.optimizes(), "{} must not optimize", case.name);
            assert!(!chain.is_optimized());
        }
    }

    #[test]
    fn plan_depth_defaults_to_sequential() {
        let registry = FnRegistry::standard();
        let config = RouterConfig::default();
        let triples =
            vec![FnTriple::router(0, 32, FnKey::Match32), FnTriple::router(32, 32, FnKey::Source)];
        let seq = CompiledChain::compile(&triples, &registry, &config, false);
        assert_eq!(seq.plan_depth(false), 2);
        assert_eq!(seq.plan_depth(true), 2, "no plan computed -> sequential");
        let par = CompiledChain::compile(&triples, &registry, &config, true);
        assert_eq!(par.plan_depth(true), 1, "disjoint reads share a wave");
        assert_eq!(par.plan_depth(false), 2);
    }
}

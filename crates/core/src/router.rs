//! The per-hop packet processing loop — **Algorithm 1** of the paper.
//!
//! ```text
//! 1 parse basic DIP header (FN_Num and FN_LocLen);
//! 2 parse FN[] according to FN_Num;
//! 3 extract FN_Loc according to FN_LocLen;
//! 4 for i <- 1 to FN_Num do
//! 5   if FN[i].tag == 1 then continue;            // skip host operation
//! 9   target_field <- FN_Loc(FN[i].FieldLoc, FN[i].FieldLen);
//! 10  switch FN[i].key do ... F_FIB / F_PIT / F_parm / F_MAC / F_mark ...
//! 18 end processing;
//! ```
//!
//! plus the surrounding concerns: hop-limit handling, the §2.4 processing
//! budget, unknown-FN policy (skip vs. notify), and combining per-op
//! [`Action`]s into a routing [`Verdict`].

use crate::budget::{BudgetMeter, ProcessingBudget};
use crate::chain::{parse_packet, ChainEntry, CompiledChain, OptUnit, ParsedPacket};
use crate::control::ControlMessage;
use crate::metrics::RouterMetrics;
use dip_fnops::{Action, DropReason, FnRegistry, OpCost, PacketCtx, RouterState};
use dip_tables::{Port, Ticks};
use dip_telemetry::{PacketOutcome, Registry};
use dip_wire::triple::FnKey;
use dip_wire::DipPacket;
use std::collections::HashSet;

/// What to do with a packet carrying an operation key this node has no
/// module for, when the key is not in the participation-required set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UnknownFnPolicy {
    /// "Otherwise, the router can simply ignore this FN" (§2.4).
    #[default]
    Skip,
    /// Strict mode: treat every unknown FN as requiring participation.
    Notify,
}

/// Per-router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Hard per-packet processing limits (§2.4).
    pub budget: ProcessingBudget,
    /// Policy for unknown, non-participation FNs.
    pub unknown_fn_policy: UnknownFnPolicy,
    /// Keys that "require all on-path ASes to participate" (§2.4) — a
    /// packet carrying one of these through a node that lacks the module
    /// triggers an FN-unsupported notification. Defaults to the OPT
    /// path-authentication chain.
    pub participation_keys: HashSet<u16>,
    /// Egress used when the FN chain produced no routing decision (the
    /// paper's OPT-only experiment forwards on a statically configured
    /// port). `None` delivers locally.
    pub default_port: Option<Port>,
    /// Whether this node honors the parallel flag (§2.2); affects only the
    /// reported plan depth / timing model, never observable results.
    pub parallel_enabled: bool,
    /// Run the dipopt static optimizer over each packet's program and
    /// execute the optimized plan when rewrites were proven safe
    /// (`dip_verify::opt`). Off by default — the interpreted chain is the
    /// semantic reference. Budget accounting *replays* the unoptimized
    /// charge sequence either way, so verdicts and packet bytes are
    /// identical; only the timing-model cost (and the per-FN invocation
    /// counters, which no longer see eliminated ops) changes. Optimized
    /// chains cache hoisted state derived from the router's secrets, so
    /// rotating `local_secret` requires recompiling cached chains.
    pub optimize: bool,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            budget: ProcessingBudget::default(),
            unknown_fn_policy: UnknownFnPolicy::Skip,
            participation_keys: [FnKey::Parm, FnKey::Mac, FnKey::Mark]
                .into_iter()
                .map(|k| k.to_wire())
                .collect(),
            default_port: None,
            parallel_enabled: true,
            optimize: false,
        }
    }
}

/// The router's decision for one packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Forward copies on these ports.
    Forward(Vec<Port>),
    /// Deliver to the local stack.
    Deliver,
    /// Absorbed without error (e.g. aggregated interest).
    Consumed,
    /// Answer from the content store: send `data` back out the ingress.
    RespondCached(Vec<u8>),
    /// Send a control message back toward the source (§2.4).
    Notify(ControlMessage),
    /// Discard.
    Drop(DropReason),
}

impl Verdict {
    /// Collapses the verdict into the workspace-wide accounting taxonomy:
    /// every packet is exactly one of forwarded / consumed / dropped.
    /// `Deliver`, `RespondCached`, and `Notify` all end the packet's life
    /// at this node, so they count as [`PacketOutcome::Consumed`].
    pub fn outcome(&self) -> PacketOutcome {
        match self {
            Verdict::Forward(_) => PacketOutcome::Forwarded,
            Verdict::Deliver | Verdict::Consumed | Verdict::RespondCached(_) => {
                PacketOutcome::Consumed
            }
            Verdict::Notify(_) => PacketOutcome::Consumed,
            Verdict::Drop(reason) => PacketOutcome::Dropped(*reason),
        }
    }
}

/// Accounting for one processed packet.
#[derive(Debug, Clone, Default)]
pub struct ProcessStats {
    /// Router-executed FNs.
    pub fns_executed: u32,
    /// Host-tagged FNs skipped (Algorithm 1 line 5).
    pub skipped_host: u32,
    /// Unsupported FNs skipped under [`UnknownFnPolicy::Skip`].
    pub skipped_unsupported: u32,
    /// Accumulated architecture cost.
    pub cost: OpCost,
    /// Sequential depth of the execution plan (= `fns_executed` when the
    /// parallel flag is off; possibly smaller when on).
    pub plan_depth: usize,
}

/// A DIP-capable router: forwarding state + FN registry + config.
///
/// ```
/// use dip_core::{DipRouter, Verdict};
/// use dip_tables::fib::NextHop;
/// use dip_wire::ipv4::Ipv4Addr;
/// use dip_wire::packet::DipRepr;
/// use dip_wire::triple::{FnKey, FnTriple};
///
/// let mut router = DipRouter::new(1, [7; 16]);
/// router.state_mut().ipv4_fib.add_route(Ipv4Addr::new(10, 0, 0, 0), 8, NextHop::port(3));
///
/// // The §3 DIP-32 header: dst || src in the locations, two FN triples.
/// let repr = DipRepr {
///     fns: vec![
///         FnTriple::router(0, 32, FnKey::Match32),
///         FnTriple::router(32, 32, FnKey::Source),
///     ],
///     locations: vec![10, 1, 2, 3, 192, 168, 0, 1],
///     ..Default::default()
/// };
/// let mut buf = repr.to_bytes(b"payload").unwrap();
/// let (verdict, stats) = router.process(&mut buf, /*in_port*/ 0, /*now*/ 0);
/// assert_eq!(verdict, Verdict::Forward(vec![3]));
/// assert_eq!(stats.fns_executed, 2);
/// ```
pub struct DipRouter {
    state: RouterState,
    registry: FnRegistry,
    config: RouterConfig,
    metrics: Option<RouterMetrics>,
}

impl DipRouter {
    /// A router with the standard registry and default config.
    pub fn new(node_id: u64, local_secret: dip_crypto::Block) -> Self {
        DipRouter {
            state: RouterState::new(node_id, local_secret),
            registry: FnRegistry::standard(),
            config: RouterConfig::default(),
            metrics: None,
        }
    }

    /// Wires this router to a telemetry [`Registry`]: verdict counters,
    /// execute-latency histogram, per-FN invocation counters, the PIT's
    /// expired-eviction counter, and — when a content store is enabled —
    /// its LRU-eviction counter, all under `labels`.
    ///
    /// Call [`RouterState::enable_content_store`] *before* this if you
    /// want `dip_cs_evictions_total` exported; a store enabled later
    /// keeps its private counter.
    ///
    /// Until called, processing records nothing and takes no `Instant`
    /// samples.
    pub fn attach_metrics(&mut self, registry: &Registry, labels: &[(&str, &str)]) {
        self.state.pit.set_eviction_counter(registry.counter(
            "dip_pit_expired_evictions_total",
            "PIT entries removed because their lifetime elapsed",
            labels,
        ));
        if let Some(cs) = self.state.content_store.as_mut() {
            cs.set_eviction_counter(registry.counter(
                "dip_cs_evictions_total",
                "Content-store entries displaced by LRU to hold the capacity bound",
                labels,
            ));
        }
        self.metrics = Some(RouterMetrics::new(registry, labels));
    }

    /// Replaces the registry (heterogeneous AS configurations, §2.4).
    pub fn with_registry(mut self, registry: FnRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Replaces the configuration.
    pub fn with_config(mut self, config: RouterConfig) -> Self {
        self.config = config;
        self
    }

    /// Forwarding state access.
    pub fn state(&self) -> &RouterState {
        &self.state
    }

    /// Mutable forwarding state access (route installation etc.).
    pub fn state_mut(&mut self) -> &mut RouterState {
        &mut self.state
    }

    /// Registry access.
    pub fn registry(&self) -> &FnRegistry {
        &self.registry
    }

    /// Mutable registry access (runtime FN upgrades, §5).
    pub fn registry_mut(&mut self) -> &mut FnRegistry {
        &mut self.registry
    }

    /// Config access.
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// Mutable config access (dynamic policy, §2.4).
    pub fn config_mut(&mut self) -> &mut RouterConfig {
        &mut self.config
    }

    /// Processes one packet in place (tags in the FN locations area are
    /// updated in the buffer) and returns the verdict plus accounting.
    ///
    /// `buf` must contain the full packet; `in_port` is the ingress.
    ///
    /// This is `parse → compile → execute`: the heavy lifting lives in
    /// [`process_parsed`](DipRouter::process_parsed), which batching
    /// runtimes call directly with a cached [`CompiledChain`].
    pub fn process(
        &mut self,
        buf: &mut [u8],
        in_port: Port,
        now: Ticks,
    ) -> (Verdict, ProcessStats) {
        // Lines 1–3: parse basic header, triples, locations.
        let Some(parsed) = parse_packet(buf) else {
            let verdict = Verdict::Drop(DropReason::MalformedField);
            if let Some(metrics) = self.metrics.as_ref() {
                metrics.count_verdict(&verdict);
            }
            return (verdict, ProcessStats::default());
        };
        let compute_plan = parsed.parallel && self.config.parallel_enabled;
        if self.config.optimize {
            let (chain, _) = CompiledChain::compile_optimized(
                &parsed.triples,
                &self.registry,
                &self.config,
                compute_plan,
                parsed.loc_len,
                parsed.parallel,
            );
            return self.process_parsed(buf, &parsed, &chain, in_port, now);
        }
        let chain =
            CompiledChain::compile(&parsed.triples, &self.registry, &self.config, compute_plan);
        self.process_parsed(buf, &parsed, &chain, in_port, now)
    }

    /// Lines 4–18 of Algorithm 1: executes an already parsed packet
    /// through an already compiled chain.
    ///
    /// `parsed` must describe `buf` and `chain` must have been compiled
    /// from `parsed.triples` against this router's registry and config —
    /// [`process`](DipRouter::process) is the reference pairing. The
    /// batched dataplane caches the chain per program and calls this once
    /// per packet, amortizing registry lookups and the §2.2 plan across
    /// the batch.
    pub fn process_parsed(
        &mut self,
        buf: &mut [u8],
        parsed: &ParsedPacket,
        chain: &CompiledChain,
        in_port: Port,
        now: Ticks,
    ) -> (Verdict, ProcessStats) {
        // Take the Instant only when someone is listening: unattached
        // routers must not pay a clock read per packet.
        let start = self.metrics.as_ref().map(|_| std::time::Instant::now());
        let (verdict, stats) = self.process_parsed_inner(buf, parsed, chain, in_port, now);
        if let (Some(metrics), Some(start)) = (self.metrics.as_ref(), start) {
            metrics
                .observe_execute_ns(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
            metrics.count_verdict(&verdict);
        }
        (verdict, stats)
    }

    fn process_parsed_inner(
        &mut self,
        buf: &mut [u8],
        parsed: &ParsedPacket,
        chain: &CompiledChain,
        in_port: Port,
        now: Ticks,
    ) -> (Verdict, ProcessStats) {
        let mut stats = ProcessStats::default();

        // Hop limit.
        {
            let mut pkt = DipPacket::new_unchecked(&mut buf[..]);
            if pkt.decrement_hop_limit().is_none() {
                return (Verdict::Drop(DropReason::HopLimitExceeded), stats);
            }
        }

        // Split borrow: mutable locations + immutable payload.
        let (head, payload) = buf.split_at_mut(parsed.header_len);
        let locations = &mut head[parsed.loc_start..];
        let payload: &[u8] = payload;
        let mut ctx = PacketCtx::new(locations, payload, in_port, now);

        // Plan depth (timing model input; execution stays in order).
        stats.plan_depth = chain.plan_depth(parsed.parallel && self.config.parallel_enabled);

        // Lines 4–17: the FN chain.
        let mut meter = BudgetMeter::new();
        let mut decision: Option<Verdict> = None;

        // dipopt plan: same chain walk, but eliminated ops leave
        // charge-only residue, hoisted setup is reused, and the timing
        // model sees the fused/hoisted costs.
        if let Some(plan) = chain.optimized.as_ref() {
            let mut model_cost = OpCost::default();
            for unit in &plan.units {
                let (triple, op, charge, unit_model, hoist) = match unit {
                    OptUnit::Host => {
                        stats.skipped_host += 1;
                        continue;
                    }
                    OptUnit::Unsupported { notify: true, key, index } => {
                        return (
                            Verdict::Notify(ControlMessage::FnUnsupported {
                                key: *key,
                                node_id: self.state.node_id,
                                fn_index: *index as u8,
                            }),
                            stats,
                        );
                    }
                    OptUnit::Unsupported { notify: false, .. } => {
                        stats.skipped_unsupported += 1;
                        continue;
                    }
                    OptUnit::Charge { cost } => {
                        // Replay the eliminated op's budget charge so drop
                        // decisions match the interpreted chain exactly.
                        if !meter.charge(&self.config.budget, *cost) {
                            return (Verdict::Drop(DropReason::ProcessingBudgetExceeded), stats);
                        }
                        continue;
                    }
                    OptUnit::Run { triple, op, charge, model, hoist } => {
                        (triple, op, *charge, *model, *hoist)
                    }
                };
                if !meter.charge(&self.config.budget, charge) {
                    return (Verdict::Drop(DropReason::ProcessingBudgetExceeded), stats);
                }
                stats.fns_executed += 1;
                model_cost = model_cost + unit_model;
                stats.cost = model_cost;
                if let Some(metrics) = self.metrics.as_mut() {
                    metrics.count_op(triple.key);
                }
                let action = match hoist {
                    Some(slot) => {
                        let hoisted = plan.hoists[slot].get_or_init(|| op.hoist(&self.state));
                        match hoisted {
                            Some(h) => op.execute_hoisted(triple, &mut self.state, &mut ctx, h),
                            None => op.execute(triple, &mut self.state, &mut ctx),
                        }
                    }
                    None => op.execute(triple, &mut self.state, &mut ctx),
                };
                match action {
                    Action::Continue => {}
                    Action::Forward(p) => {
                        decision.get_or_insert(Verdict::Forward(vec![p]));
                    }
                    Action::ForwardMulti(ps) => {
                        decision.get_or_insert(Verdict::Forward(ps));
                    }
                    Action::Deliver => {
                        decision.get_or_insert(Verdict::Deliver);
                    }
                    Action::Consumed => {
                        decision.get_or_insert(Verdict::Consumed);
                    }
                    Action::RespondCached(data) => {
                        return (Verdict::RespondCached(data), stats);
                    }
                    Action::Drop(reason) => {
                        return (Verdict::Drop(reason), stats);
                    }
                }
            }
            // The optimized plan executes strictly in order; the eliminated
            // ops no longer occupy stages, so depth equals what actually ran
            // (ratio 1 in the timing model — no double discount on top of
            // the fused stage costs).
            stats.plan_depth = stats.fns_executed as usize;
            let verdict = decision.unwrap_or(match self.config.default_port {
                Some(p) => Verdict::Forward(vec![p]),
                None => Verdict::Deliver,
            });
            return (verdict, stats);
        }

        for (i, entry) in chain.entries.iter().enumerate() {
            let (triple, op, cost) = match entry {
                ChainEntry::Host => {
                    stats.skipped_host += 1;
                    continue;
                }
                ChainEntry::Unsupported { key, notify: true } => {
                    return (
                        Verdict::Notify(ControlMessage::FnUnsupported {
                            key: *key,
                            node_id: self.state.node_id,
                            fn_index: i as u8,
                        }),
                        stats,
                    );
                }
                ChainEntry::Unsupported { notify: false, .. } => {
                    stats.skipped_unsupported += 1;
                    continue;
                }
                ChainEntry::Op { triple, op, cost } => (triple, op, *cost),
            };
            if !meter.charge(&self.config.budget, cost) {
                return (Verdict::Drop(DropReason::ProcessingBudgetExceeded), stats);
            }
            stats.fns_executed += 1;
            stats.cost = meter.cost;
            if let Some(metrics) = self.metrics.as_mut() {
                metrics.count_op(triple.key);
            }
            match op.execute(triple, &mut self.state, &mut ctx) {
                Action::Continue => {}
                Action::Forward(p) => {
                    decision.get_or_insert(Verdict::Forward(vec![p]));
                }
                Action::ForwardMulti(ps) => {
                    decision.get_or_insert(Verdict::Forward(ps));
                }
                Action::Deliver => {
                    decision.get_or_insert(Verdict::Deliver);
                }
                Action::Consumed => {
                    decision.get_or_insert(Verdict::Consumed);
                }
                Action::RespondCached(data) => {
                    return (Verdict::RespondCached(data), stats);
                }
                Action::Drop(reason) => {
                    return (Verdict::Drop(reason), stats);
                }
            }
        }

        // Line 18: end processing.
        let verdict = decision.unwrap_or(match self.config.default_port {
            Some(p) => Verdict::Forward(vec![p]),
            None => Verdict::Deliver,
        });
        (verdict, stats)
    }
}

impl std::fmt::Debug for DipRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DipRouter")
            .field("state", &self.state)
            .field("registry", &self.registry)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dip_tables::fib::NextHop;
    use dip_wire::ipv4::Ipv4Addr;
    use dip_wire::packet::DipRepr;
    use dip_wire::triple::FnTriple;

    fn dip32_packet(dst: [u8; 4], src: [u8; 4]) -> Vec<u8> {
        let mut locations = dst.to_vec();
        locations.extend_from_slice(&src);
        DipRepr {
            fns: vec![
                FnTriple::router(0, 32, FnKey::Match32),
                FnTriple::router(32, 32, FnKey::Source),
            ],
            locations,
            ..Default::default()
        }
        .to_bytes(b"payload")
        .unwrap()
    }

    #[test]
    fn dip32_forwarding_end_to_end() {
        let mut r = DipRouter::new(1, [1; 16]);
        r.state_mut().ipv4_fib.add_route(Ipv4Addr::new(10, 0, 0, 0), 8, NextHop::port(3));
        let mut pkt = dip32_packet([10, 1, 2, 3], [192, 168, 0, 1]);
        let (verdict, stats) = r.process(&mut pkt, 0, 0);
        assert_eq!(verdict, Verdict::Forward(vec![3]));
        assert_eq!(stats.fns_executed, 2);
        // Hop limit was decremented in the buffer.
        assert_eq!(pkt[3], 63);
    }

    #[test]
    fn hop_limit_zero_drops() {
        let mut r = DipRouter::new(1, [1; 16]);
        let mut pkt = dip32_packet([10, 1, 2, 3], [0; 4]);
        pkt[3] = 0;
        let (verdict, _) = r.process(&mut pkt, 0, 0);
        assert_eq!(verdict, Verdict::Drop(DropReason::HopLimitExceeded));
    }

    #[test]
    fn truncated_packet_is_malformed() {
        let mut r = DipRouter::new(1, [1; 16]);
        let pkt = dip32_packet([10, 1, 2, 3], [0; 4]);
        let mut short = pkt[..10].to_vec();
        let (verdict, _) = r.process(&mut short, 0, 0);
        assert_eq!(verdict, Verdict::Drop(DropReason::MalformedField));
    }

    #[test]
    fn host_tagged_fns_are_skipped() {
        let mut r = DipRouter::new(1, [1; 16]);
        r.config_mut().default_port = Some(9);
        let repr = DipRepr {
            fns: vec![FnTriple::host(0, 544, FnKey::Ver)],
            locations: vec![0u8; 68],
            ..Default::default()
        };
        let mut pkt = repr.to_bytes(&[]).unwrap();
        let (verdict, stats) = r.process(&mut pkt, 0, 0);
        assert_eq!(verdict, Verdict::Forward(vec![9]));
        assert_eq!(stats.skipped_host, 1);
        assert_eq!(stats.fns_executed, 0);
    }

    #[test]
    fn unsupported_participation_fn_notifies() {
        // Router lacking the MAC module must notify, not silently skip.
        let mut r = DipRouter::new(7, [1; 16])
            .with_registry(FnRegistry::with_keys(&[FnKey::Match32, FnKey::Source]));
        let repr = DipRepr {
            fns: vec![FnTriple::router(128, 128, FnKey::Parm)],
            locations: vec![0u8; 68],
            ..Default::default()
        };
        let mut pkt = repr.to_bytes(&[]).unwrap();
        let (verdict, _) = r.process(&mut pkt, 0, 0);
        assert_eq!(
            verdict,
            Verdict::Notify(ControlMessage::FnUnsupported {
                key: FnKey::Parm.to_wire(),
                node_id: 7,
                fn_index: 0
            })
        );
    }

    #[test]
    fn unsupported_optional_fn_skipped() {
        let mut r =
            DipRouter::new(1, [1; 16]).with_registry(FnRegistry::with_keys(&[FnKey::Match32]));
        r.config_mut().default_port = Some(2);
        let repr = DipRepr {
            fns: vec![FnTriple::router(0, 32, FnKey::Other(0x200))],
            locations: vec![0u8; 4],
            ..Default::default()
        };
        let mut pkt = repr.to_bytes(&[]).unwrap();
        let (verdict, stats) = r.process(&mut pkt, 0, 0);
        assert_eq!(verdict, Verdict::Forward(vec![2]));
        assert_eq!(stats.skipped_unsupported, 1);
    }

    #[test]
    fn notify_policy_rejects_any_unknown() {
        let mut r = DipRouter::new(1, [1; 16]);
        r.config_mut().unknown_fn_policy = UnknownFnPolicy::Notify;
        let repr = DipRepr {
            fns: vec![FnTriple::router(0, 32, FnKey::Other(0x200))],
            locations: vec![0u8; 4],
            ..Default::default()
        };
        let mut pkt = repr.to_bytes(&[]).unwrap();
        let (verdict, _) = r.process(&mut pkt, 0, 0);
        assert!(matches!(verdict, Verdict::Notify(_)));
    }

    #[test]
    fn budget_exceeded_drops() {
        let mut r = DipRouter::new(1, [1; 16]);
        r.state_mut().ipv4_fib.add_route(Ipv4Addr::new(10, 0, 0, 0), 8, NextHop::port(3));
        r.config_mut().budget = ProcessingBudget { max_fns: 1, ..ProcessingBudget::unlimited() };
        let mut pkt = dip32_packet([10, 1, 2, 3], [0; 4]);
        let (verdict, _) = r.process(&mut pkt, 0, 0);
        assert_eq!(verdict, Verdict::Drop(DropReason::ProcessingBudgetExceeded));
    }

    #[test]
    fn first_decision_is_sticky() {
        // Two match FNs pointing at different FIB entries: the first wins.
        let mut r = DipRouter::new(1, [1; 16]);
        r.state_mut().ipv4_fib.add_route(Ipv4Addr::new(10, 0, 0, 0), 8, NextHop::port(1));
        r.state_mut().ipv4_fib.add_route(Ipv4Addr::new(20, 0, 0, 0), 8, NextHop::port(2));
        let mut locations = vec![10, 0, 0, 1];
        locations.extend_from_slice(&[20, 0, 0, 1]);
        let repr = DipRepr {
            fns: vec![
                FnTriple::router(0, 32, FnKey::Match32),
                FnTriple::router(32, 32, FnKey::Match32),
            ],
            locations,
            ..Default::default()
        };
        let mut pkt = repr.to_bytes(&[]).unwrap();
        let (verdict, stats) = r.process(&mut pkt, 0, 0);
        assert_eq!(verdict, Verdict::Forward(vec![1]));
        assert_eq!(stats.fns_executed, 2); // later ops still ran
    }

    #[test]
    fn empty_fn_chain_uses_default() {
        let mut r = DipRouter::new(1, [1; 16]);
        let repr = DipRepr::default();
        let mut pkt = repr.to_bytes(b"x").unwrap();
        let (verdict, _) = r.process(&mut pkt, 0, 0);
        assert_eq!(verdict, Verdict::Deliver);
    }

    #[test]
    fn attached_metrics_count_verdicts_ops_and_latency() {
        let registry = dip_telemetry::Registry::new();
        let mut r = DipRouter::new(1, [1; 16]);
        r.attach_metrics(&registry, &[("node", "1")]);
        r.state_mut().ipv4_fib.add_route(Ipv4Addr::new(10, 0, 0, 0), 8, NextHop::port(3));

        let mut routed = dip32_packet([10, 1, 2, 3], [192, 168, 0, 1]);
        assert_eq!(r.process(&mut routed, 0, 0).0, Verdict::Forward(vec![3]));
        let mut unrouted = dip32_packet([99, 1, 2, 3], [192, 168, 0, 1]);
        assert!(matches!(r.process(&mut unrouted, 0, 0).0, Verdict::Drop(_)));

        let snap = registry.snapshot();
        assert_eq!(snap.sum_where("dip_router_verdicts_total", &[("verdict", "forward")]), 1);
        assert_eq!(snap.sum_where("dip_router_verdicts_total", &[("verdict", "drop")]), 1);
        // Match32 ran on both packets, Source only on the routed one (the
        // unrouted packet dropped at the match stage).
        assert_eq!(snap.sum_where("dip_fn_invocations_total", &[("fn", "Match32")]), 2);
        assert_eq!(snap.sum_where("dip_fn_invocations_total", &[("fn", "Source")]), 1);
        // Two process() calls -> two latency observations.
        assert_eq!(snap.get("dip_router_execute_ns_count"), 2);
        assert_eq!(
            snap.get("dip_router_verdicts_total"),
            2,
            "each packet gets exactly one verdict"
        );
    }

    #[test]
    fn verdict_outcome_taxonomy() {
        use dip_telemetry::PacketOutcome;
        assert_eq!(Verdict::Forward(vec![1]).outcome(), PacketOutcome::Forwarded);
        assert_eq!(Verdict::Deliver.outcome(), PacketOutcome::Consumed);
        assert_eq!(Verdict::Consumed.outcome(), PacketOutcome::Consumed);
        assert_eq!(Verdict::RespondCached(vec![]).outcome(), PacketOutcome::Consumed);
        assert_eq!(
            Verdict::Drop(DropReason::NoRoute).outcome(),
            PacketOutcome::Dropped(DropReason::NoRoute)
        );
    }

    #[test]
    fn optimized_xia_chain_runs_one_fn_with_the_fused_model() {
        use dip_tables::XiaNextHop;
        use dip_wire::xia::{Dag, DagNode, Xid, XidType};
        let dag = Dag::direct_with_fallback(
            DagNode::sink(XidType::Cid, Xid::derive(b"the-content")),
            Xid::derive(b"ad-1"),
            Xid::derive(b"host-1"),
        )
        .unwrap();
        let repr = DipRepr {
            fns: vec![
                FnTriple::router(0, dag.encoded_bits(), FnKey::Dag),
                FnTriple::router(0, dag.encoded_bits(), FnKey::Intent),
            ],
            locations: dag.encode(),
            ..Default::default()
        };
        let build = |optimize: bool| {
            let mut r = DipRouter::new(1, [1; 16]);
            r.config_mut().optimize = optimize;
            r.state_mut().xia.add_route(
                XidType::Cid,
                Xid::derive(b"the-content"),
                XiaNextHop::Port(4),
            );
            r
        };
        let mut plain_buf = repr.to_bytes(&[]).unwrap();
        let mut opt_buf = plain_buf.clone();
        let (pv, ps) = build(false).process(&mut plain_buf, 0, 0);
        let (ov, os) = build(true).process(&mut opt_buf, 0, 0);
        assert_eq!(pv, Verdict::Forward(vec![4]));
        assert_eq!(ov, pv, "verdicts must match");
        assert_eq!(plain_buf, opt_buf, "packet bytes must match");
        // Interpreted: parse + intent. Optimized: the parse is eliminated.
        assert_eq!(ps.fns_executed, 2);
        assert_eq!(os.fns_executed, 1);
        assert_eq!(os.plan_depth, 1);
        // Fused timing model for the 3-node DAG: one stage, two lookups —
        // vs stages(4) + lookup(2,3) interpreted.
        assert_eq!(os.cost, OpCost::lookup(1, 2));
        // Budget accounting replays the original charges on both paths.
        assert_eq!(ps.cost, OpCost::stages(4) + OpCost::lookup(2, 3));
    }

    #[test]
    fn optimizer_corpus_cases_run_identically_with_optimize_on() {
        // Admissible-but-unoptimizable programs: the optimize flag must be
        // a no-op for them, end to end.
        for case in dip_verify::optimization_corpus() {
            let make = || {
                let mut r = DipRouter::new(9, [0x5a; 16]);
                r.state_mut().ipv4_fib.add_route(Ipv4Addr::new(10, 0, 0, 0), 8, NextHop::port(3));
                r
            };
            let report = crate::equiv::differential_smoke(
                &case.program.fns,
                case.program.loc_len,
                case.program.parallel,
                make().registry(),
                7,
            )
            .unwrap_or_else(|e| panic!("corpus case {}: {e}", case.name));
            assert_eq!(report.packets, 4);
            assert_eq!(report.optimized_verdicts, 0, "{} must not be optimized", case.name);
        }
    }

    #[test]
    fn plan_depth_reported_for_parallel_packets() {
        let mut r = DipRouter::new(1, [1; 16]);
        r.state_mut().ipv4_fib.add_route(Ipv4Addr::new(10, 0, 0, 0), 8, NextHop::port(1));
        let mut locations = vec![10, 0, 0, 1];
        locations.extend_from_slice(&[1, 2, 3, 4]);
        let mut repr = DipRepr {
            fns: vec![
                FnTriple::router(0, 32, FnKey::Match32),
                FnTriple::router(32, 32, FnKey::Source),
            ],
            locations,
            ..Default::default()
        };
        repr.parallel = true;
        let mut pkt = repr.to_bytes(&[]).unwrap();
        let (_, stats) = r.process(&mut pkt, 0, 0);
        assert_eq!(stats.plan_depth, 1); // both ops in one wave
                                         // Sequential packet: depth 2.
        repr.parallel = false;
        let mut pkt = repr.to_bytes(&[]).unwrap();
        let (_, stats) = r.process(&mut pkt, 0, 0);
        assert_eq!(stats.plan_depth, 2);
    }
}

//! Host-side packet handling.
//!
//! §2.3: hosts *construct* FN chains before sending (done by the protocol
//! profiles in `dip-protocols` with [`dip_wire::packet::DipBuilder`]) and
//! *execute host-tagged FNs* on receipt — "Finally, the host receives and
//! verifies the packet by performing F_ver."
//!
//! [`deliver`] is that receive path: it runs every FN whose tag bit is set,
//! with the session material the host holds (source key + per-hop dynamic
//! keys for OPT verification).

use dip_crypto::Block;
use dip_fnops::{Action, DropReason, FnRegistry, PacketCtx, RouterState};
use dip_tables::Ticks;
use dip_wire::{DipPacket, BASIC_HEADER_LEN, FN_TRIPLE_LEN};

/// Session material a receiving host holds for verification.
#[derive(Debug, Clone, Default)]
pub struct HostContext {
    /// The source↔destination session key seeding the PVF chain.
    pub source_key: Option<Block>,
    /// Dynamic keys of the on-path routers, in path order.
    pub path_keys: Vec<Block>,
}

/// Outcome of host-side delivery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// Number of host-tagged FNs executed.
    pub host_fns_executed: u32,
    /// Whether a verification FN ran and succeeded.
    pub verified: bool,
}

/// Executes the host-tagged FNs of a received packet.
///
/// Returns the delivery summary, or the drop reason when a host FN rejects
/// the packet (e.g. `F_ver` authentication failure).
pub fn deliver(
    buf: &mut [u8],
    host_ctx: &HostContext,
    state: &mut RouterState,
    registry: &FnRegistry,
    now: Ticks,
) -> Result<Delivery, DropReason> {
    let (triples, loc_start, header_len) = {
        let pkt = DipPacket::new_checked(&buf[..]).map_err(|_| DropReason::MalformedField)?;
        let triples = pkt.triples().map_err(|_| DropReason::MalformedField)?;
        let loc_len = pkt.fn_loc_len();
        for t in &triples {
            if !t.fits(loc_len) {
                return Err(DropReason::MalformedField);
            }
        }
        (triples, BASIC_HEADER_LEN + pkt.fn_num() as usize * FN_TRIPLE_LEN, pkt.header_len())
    };

    let (head, payload) = buf.split_at_mut(header_len);
    let locations = &mut head[loc_start..];
    let mut ctx = PacketCtx::new(locations, payload, 0, now);
    ctx.source_key = host_ctx.source_key;
    ctx.path_keys = host_ctx.path_keys.clone();

    let mut delivery = Delivery { host_fns_executed: 0, verified: false };
    for triple in triples.iter().filter(|t| t.host) {
        let Some(op) = registry.get(triple.key) else {
            // A host cannot skip its own verification obligations.
            return Err(DropReason::UnsupportedFn);
        };
        let op = std::sync::Arc::clone(op);
        delivery.host_fns_executed += 1;
        match op.execute(triple, state, &mut ctx) {
            Action::Deliver => delivery.verified = true,
            Action::Continue => {}
            Action::Drop(r) => return Err(r),
            // Host FNs don't make forwarding decisions; anything else is a
            // protocol construction error.
            _ => return Err(DropReason::MalformedField),
        }
    }
    Ok(delivery)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dip_crypto::mmo_hash;
    use dip_crypto::{CbcMac, MacAlgorithm};
    use dip_fnops::context::MacChoice;
    use dip_wire::opt::{OptRepr, OPT_BLOCK_BITS};
    use dip_wire::packet::DipRepr;
    use dip_wire::triple::{FnKey, FnTriple};

    fn mac(key: &Block, data: &[u8]) -> Block {
        CbcMac::new_2em(key).mac(data)
    }

    /// Packet as produced by a source and one honest router.
    fn opt_packet(payload: &[u8], source_key: Block, hop_key: Block) -> Vec<u8> {
        let data_hash = mmo_hash(payload);
        let mut block = OptRepr {
            data_hash,
            session_id: [9; 16],
            timestamp: 1,
            pvf: mac(&source_key, &data_hash),
            opv: [0; 16],
        };
        // Router order (§3): F_MAC over the pre-mark coverage, then F_mark.
        let bytes = block.to_bytes();
        block.opv = mac(&hop_key, &bytes[..52]);
        block.pvf = mac(&hop_key, &block.pvf);
        DipRepr {
            fns: vec![FnTriple::host(0, OPT_BLOCK_BITS, FnKey::Ver)],
            locations: block.to_bytes().to_vec(),
            ..Default::default()
        }
        .to_bytes(payload)
        .unwrap()
    }

    #[test]
    fn delivery_verifies_honest_packet() {
        let source_key = [1u8; 16];
        let hop_key = [2u8; 16];
        let mut buf = opt_packet(b"data", source_key, hop_key);
        let mut state = RouterState::new(100, [0; 16]);
        state.mac_choice = MacChoice::TwoRoundEm;
        let host = HostContext { source_key: Some(source_key), path_keys: vec![hop_key] };
        let d = deliver(&mut buf, &host, &mut state, &FnRegistry::standard(), 0).unwrap();
        assert!(d.verified);
        assert_eq!(d.host_fns_executed, 1);
    }

    #[test]
    fn delivery_rejects_tampering() {
        let source_key = [1u8; 16];
        let hop_key = [2u8; 16];
        let mut buf = opt_packet(b"data", source_key, hop_key);
        let n = buf.len();
        buf[n - 1] ^= 0xff; // tamper with the payload
        let mut state = RouterState::new(100, [0; 16]);
        let host = HostContext { source_key: Some(source_key), path_keys: vec![hop_key] };
        assert_eq!(
            deliver(&mut buf, &host, &mut state, &FnRegistry::standard(), 0),
            Err(DropReason::AuthenticationFailed)
        );
    }

    #[test]
    fn plain_packet_delivers_unverified() {
        let mut buf = DipRepr::default().to_bytes(b"hello").unwrap();
        let mut state = RouterState::new(100, [0; 16]);
        let d = deliver(&mut buf, &HostContext::default(), &mut state, &FnRegistry::standard(), 0)
            .unwrap();
        assert!(!d.verified);
        assert_eq!(d.host_fns_executed, 0);
    }

    #[test]
    fn missing_host_module_is_an_error() {
        let mut buf = opt_packet(b"data", [1; 16], [2; 16]);
        let mut state = RouterState::new(100, [0; 16]);
        let registry = FnRegistry::with_keys(&[FnKey::Match32]);
        assert_eq!(
            deliver(&mut buf, &HostContext::default(), &mut state, &registry, 0),
            Err(DropReason::UnsupportedFn)
        );
    }
}

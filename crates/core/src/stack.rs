//! The host stack: §2.3 from the end system's point of view.
//!
//! "Before sending the data packets, the host needs to formulate
//! appropriate FNs in the packet header considering both the required
//! network services and the supported FNs."
//!
//! [`DipHost`] ties the pieces together: it runs the DHCP-like bootstrap to
//! learn the access AS's FN set, tracks propagated per-AS capabilities,
//! answers the planning question *can protocol X run (here / on this
//! path)?* via [`requirements`], and executes host-tagged FNs on receive.

use crate::bootstrap::{CapabilityMap, FnDiscover, FnOffer};
use crate::host::{deliver, Delivery, HostContext};
use dip_fnops::{DropReason, FnRegistry, RouterState};
use dip_tables::Ticks;
use dip_verify::{Checker, FnProgram, Report};
use dip_wire::packet::DipRepr;
use dip_wire::triple::FnKey;
use std::collections::BTreeSet;

/// The paper's protocol realizations, for requirement lookups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolId {
    /// IPv4 semantics over DIP.
    Dip32,
    /// IPv6 semantics over DIP.
    Dip128,
    /// NDN content retrieval.
    Ndn,
    /// OPT source authentication + path validation.
    Opt,
    /// The derived secure content delivery protocol.
    NdnOpt,
    /// XIA DAG routing.
    Xia,
}

/// The router-side FN keys a protocol needs on path (§3's compositions).
pub fn requirements(p: ProtocolId) -> &'static [FnKey] {
    match p {
        ProtocolId::Dip32 => &[FnKey::Match32, FnKey::Source],
        ProtocolId::Dip128 => &[FnKey::Match128, FnKey::Source],
        ProtocolId::Ndn => &[FnKey::Fib, FnKey::Pit],
        ProtocolId::Opt => &[FnKey::Parm, FnKey::Mac, FnKey::Mark],
        ProtocolId::NdnOpt => &[FnKey::Fib, FnKey::Pit, FnKey::Parm, FnKey::Mac, FnKey::Mark],
        ProtocolId::Xia => &[FnKey::Dag, FnKey::Intent],
    }
}

/// Errors from the bootstrap exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BootstrapError {
    /// The offer's transaction id does not match our discover.
    XidMismatch {
        /// What we sent.
        expected: u32,
        /// What came back.
        got: u32,
    },
    /// No bootstrap is in progress.
    NotStarted,
}

/// A DIP end host.
pub struct DipHost {
    /// Stable identifier.
    pub node_id: u64,
    state: RouterState,
    registry: FnRegistry,
    pending_xid: Option<u32>,
    /// FN keys offered by the access AS (None until bootstrapped).
    learned: Option<BTreeSet<u16>>,
    /// Propagated per-AS capabilities (§2.3's BGP-community substitute).
    pub capabilities: CapabilityMap,
}

impl DipHost {
    /// A host with the standard host-side registry.
    pub fn new(node_id: u64) -> Self {
        DipHost {
            node_id,
            state: RouterState::new(node_id, [0; 16]),
            registry: FnRegistry::standard(),
            pending_xid: None,
            learned: None,
            capabilities: CapabilityMap::new(),
        }
    }

    /// Starts the DHCP-like bootstrap; send the returned message to the
    /// access router.
    pub fn begin_bootstrap(&mut self, xid: u32) -> FnDiscover {
        self.pending_xid = Some(xid);
        FnDiscover { xid }
    }

    /// Completes bootstrap with the access router's offer.
    pub fn complete_bootstrap(&mut self, offer: &FnOffer) -> Result<(), BootstrapError> {
        let expected = self.pending_xid.ok_or(BootstrapError::NotStarted)?;
        if offer.xid != expected {
            return Err(BootstrapError::XidMismatch { expected, got: offer.xid });
        }
        self.pending_xid = None;
        self.learned = Some(offer.keys.iter().copied().collect());
        self.capabilities.announce_offer(offer);
        Ok(())
    }

    /// Whether bootstrap has completed.
    pub fn is_bootstrapped(&self) -> bool {
        self.learned.is_some()
    }

    /// The FN keys the access AS offers (empty before bootstrap).
    pub fn available_fns(&self) -> Vec<FnKey> {
        self.learned.iter().flat_map(|s| s.iter().map(|&k| FnKey::from_wire(k))).collect()
    }

    /// §2.3 planning: can `protocol` run through the access AS? Returns the
    /// missing keys on failure.
    pub fn plan(&self, protocol: ProtocolId) -> Result<(), Vec<FnKey>> {
        let Some(learned) = &self.learned else {
            return Err(requirements(protocol).to_vec());
        };
        let missing: Vec<FnKey> = requirements(protocol)
            .iter()
            .copied()
            .filter(|k| !learned.contains(&k.to_wire()))
            .collect();
        if missing.is_empty() {
            Ok(())
        } else {
            Err(missing)
        }
    }

    /// Path-wide planning: can `protocol` run across every AS of `path`
    /// (per the propagated capability map)?
    pub fn plan_path(&self, protocol: ProtocolId, path: &[u32]) -> Result<(), Vec<FnKey>> {
        let missing: Vec<FnKey> = requirements(protocol)
            .iter()
            .copied()
            .filter(|k| !self.capabilities.path_supports(path, *k))
            .collect();
        if missing.is_empty() {
            Ok(())
        } else {
            Err(missing)
        }
    }

    /// Statically verifies a composed program against the access AS's
    /// learned FN set (§2.3's "considering both the required network
    /// services and the supported FNs", mechanized). Before bootstrap the
    /// host knows of no capabilities, so every router-executed FN is
    /// reported unsupported — same stance as [`DipHost::plan`].
    pub fn verify(&self, repr: &DipRepr) -> Report {
        let keys: Vec<FnKey> = self.available_fns();
        Checker::new().check_path(&FnProgram::from_repr(repr), &[FnRegistry::with_keys(&keys)])
    }

    /// Statically verifies a composed program across every AS of `path`,
    /// using the propagated capability map for the per-hop registry pass.
    pub fn verify_path(&self, repr: &DipRepr, path: &[u32]) -> Report {
        let hops = self.capabilities.path_registries(path);
        Checker::new().check_path(&FnProgram::from_repr(repr), &hops)
    }

    /// Receives a packet: runs host-tagged FNs (e.g. `F_ver`) with the
    /// session material in `host_ctx`.
    pub fn receive(
        &mut self,
        buf: &mut [u8],
        host_ctx: &HostContext,
        now: Ticks,
    ) -> Result<Delivery, DropReason> {
        deliver(buf, host_ctx, &mut self.state, &self.registry, now)
    }

    /// The host's own registry (hosts, too, can install custom FNs).
    pub fn registry_mut(&mut self) -> &mut FnRegistry {
        &mut self.registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dip_fnops::FnRegistry;

    fn offer_from(keys: &[FnKey], xid: u32) -> FnOffer {
        FnOffer { xid, as_id: 65001, keys: keys.iter().map(|k| k.to_wire()).collect() }
    }

    #[test]
    fn bootstrap_flow() {
        let mut h = DipHost::new(1);
        assert!(!h.is_bootstrapped());
        let d = h.begin_bootstrap(42);
        assert_eq!(d.xid, 42);
        let offer = FnOffer::from_registry(42, 65001, &FnRegistry::standard());
        h.complete_bootstrap(&offer).unwrap();
        assert!(h.is_bootstrapped());
        assert_eq!(h.available_fns().len(), 12);
    }

    #[test]
    fn xid_mismatch_rejected() {
        let mut h = DipHost::new(1);
        h.begin_bootstrap(1);
        let offer = offer_from(&[FnKey::Fib], 2);
        assert_eq!(
            h.complete_bootstrap(&offer),
            Err(BootstrapError::XidMismatch { expected: 1, got: 2 })
        );
        assert!(!h.is_bootstrapped());
        // Unsolicited offers are also rejected.
        let mut h2 = DipHost::new(2);
        assert_eq!(h2.complete_bootstrap(&offer), Err(BootstrapError::NotStarted));
    }

    #[test]
    fn planning_against_learned_fns() {
        let mut h = DipHost::new(1);
        h.begin_bootstrap(1);
        h.complete_bootstrap(&offer_from(
            &[FnKey::Match32, FnKey::Source, FnKey::Fib, FnKey::Pit],
            1,
        ))
        .unwrap();
        assert_eq!(h.plan(ProtocolId::Dip32), Ok(()));
        assert_eq!(h.plan(ProtocolId::Ndn), Ok(()));
        assert_eq!(h.plan(ProtocolId::Opt), Err(vec![FnKey::Parm, FnKey::Mac, FnKey::Mark]));
        assert_eq!(h.plan(ProtocolId::NdnOpt).unwrap_err().len(), 3);
    }

    #[test]
    fn planning_before_bootstrap_reports_everything_missing() {
        let h = DipHost::new(1);
        assert_eq!(h.plan(ProtocolId::Xia).unwrap_err(), vec![FnKey::Dag, FnKey::Intent]);
    }

    #[test]
    fn path_planning_uses_the_capability_map() {
        let mut h = DipHost::new(1);
        h.begin_bootstrap(1);
        h.complete_bootstrap(&FnOffer::from_registry(1, 100, &FnRegistry::standard())).unwrap();
        h.capabilities.announce(200, (1u16..=12).collect::<Vec<_>>());
        h.capabilities.announce(300, [1u16, 2, 3]); // legacy-ish AS
        assert_eq!(h.plan_path(ProtocolId::Dip32, &[100, 200, 300]), Ok(()));
        assert_eq!(
            h.plan_path(ProtocolId::Opt, &[100, 200, 300]),
            Err(vec![FnKey::Parm, FnKey::Mac, FnKey::Mark])
        );
        assert_eq!(h.plan_path(ProtocolId::Opt, &[100, 200]), Ok(()));
    }

    #[test]
    fn verify_lints_against_learned_capabilities() {
        use dip_wire::triple::FnTriple;
        let mut h = DipHost::new(1);
        h.begin_bootstrap(1);
        h.complete_bootstrap(&offer_from(&[FnKey::Match32, FnKey::Source], 1)).unwrap();
        let ip = DipRepr {
            fns: vec![
                FnTriple::router(0, 32, FnKey::Match32),
                FnTriple::router(32, 32, FnKey::Source),
            ],
            locations: vec![0u8; 8],
            ..Default::default()
        };
        assert!(h.verify(&ip).is_clean());
        // An NDN interest through an access AS without F_FIB: flagged.
        let ndn = DipRepr {
            fns: vec![FnTriple::router(0, 32, FnKey::Fib)],
            locations: vec![0u8; 4],
            ..Default::default()
        };
        let report = h.verify(&ndn);
        assert!(report.has_code(dip_verify::DiagCode::UnsupportedAtHop));
        // A malformed program is flagged even where the key is supported.
        let oob = DipRepr {
            fns: vec![FnTriple::router(0, 64, FnKey::Match32)],
            locations: vec![0u8; 4],
            ..Default::default()
        };
        assert!(h.verify(&oob).has_code(dip_verify::DiagCode::FieldOutOfBounds));
    }

    #[test]
    fn verify_path_names_the_incapable_hop() {
        use dip_wire::triple::FnTriple;
        let mut h = DipHost::new(1);
        h.capabilities.announce(100, (1u16..=12).collect::<Vec<_>>());
        h.capabilities.announce(200, [1u16, 2, 3]);
        let opt = DipRepr {
            fns: vec![
                FnTriple::router(128, 128, FnKey::Parm),
                FnTriple::router(0, 416, FnKey::Mac),
                FnTriple::router(288, 128, FnKey::Mark),
                FnTriple::host(0, 544, FnKey::Ver),
            ],
            locations: vec![0u8; 68],
            ..Default::default()
        };
        assert!(h.verify_path(&opt, &[100]).is_clean());
        let report = h.verify_path(&opt, &[100, 200]);
        assert!(report.has_errors());
        assert!(report
            .errors()
            .all(|d| d.code == dip_verify::DiagCode::UnsupportedAtHop && d.hop == Some(1)));
    }

    #[test]
    fn receive_runs_host_fns() {
        use dip_wire::packet::DipRepr;
        let mut h = DipHost::new(1);
        let mut buf = DipRepr::default().to_bytes(b"plain").unwrap();
        let d = h.receive(&mut buf, &HostContext::default(), 0).unwrap();
        assert!(!d.verified);
    }

    #[test]
    fn requirements_match_section3() {
        assert_eq!(requirements(ProtocolId::NdnOpt).len(), 5);
        assert!(requirements(ProtocolId::Opt).contains(&FnKey::Mac));
        assert!(!requirements(ProtocolId::Ndn).contains(&FnKey::Mac));
    }
}

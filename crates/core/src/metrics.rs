//! Per-router telemetry: FN-op invocation counters, verdict counters,
//! and compiled-chain execute latency.
//!
//! A [`DipRouter`](crate::DipRouter) carries no metrics by default — the
//! hot path is untouched until
//! [`attach_metrics`](crate::DipRouter::attach_metrics) wires it to a
//! [`Registry`]. Once attached, every `process_parsed` call records its
//! wall-clock execute latency and final verdict, and every executed FN op
//! bumps a per-key invocation counter; the router's PIT also reports
//! expired-entry evictions into the same registry.

use crate::router::Verdict;
use dip_telemetry::{Counter, Histogram, Registry};
use dip_wire::triple::FnKey;
use std::collections::HashMap;
use std::sync::Arc;

/// Execute-latency bucket bounds in nanoseconds (250ns … 131µs).
const EXECUTE_NS_BOUNDS: [u64; 10] =
    [250, 500, 1_000, 2_000, 4_000, 8_000, 16_000, 32_000, 65_000, 131_000];

/// The counter set one router reports into a [`Registry`].
pub struct RouterMetrics {
    registry: Registry,
    labels: Vec<(String, String)>,
    /// Indexed like the `Verdict` variants: forward, deliver, consumed,
    /// respond_cached, notify, drop.
    verdicts: [Arc<Counter>; 6],
    execute_ns: Arc<Histogram>,
    /// Lazily registered per executed FN key (wire value).
    invocations: HashMap<u16, Arc<Counter>>,
}

const VERDICT_LABELS: [&str; 6] =
    ["forward", "deliver", "consumed", "respond_cached", "notify", "drop"];

impl RouterMetrics {
    /// Registers the router counter set in `registry` under `labels`
    /// (e.g. `node=3` or `node=3, worker=1`).
    pub fn new(registry: &Registry, labels: &[(&str, &str)]) -> Self {
        let owned: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        let verdicts = VERDICT_LABELS.map(|v| {
            let mut all: Vec<(&str, &str)> = labels.to_vec();
            all.push(("verdict", v));
            registry.counter("dip_router_verdicts_total", "Verdicts by kind", &all)
        });
        let execute_ns = registry.histogram(
            "dip_router_execute_ns",
            "Compiled-chain execute latency (process_parsed wall time)",
            labels,
            &EXECUTE_NS_BOUNDS,
        );
        RouterMetrics {
            registry: registry.clone(),
            labels: owned,
            verdicts,
            execute_ns,
            invocations: HashMap::new(),
        }
    }

    pub(crate) fn count_verdict(&self, verdict: &Verdict) {
        let idx = match verdict {
            Verdict::Forward(_) => 0,
            Verdict::Deliver => 1,
            Verdict::Consumed => 2,
            Verdict::RespondCached(_) => 3,
            Verdict::Notify(_) => 4,
            Verdict::Drop(_) => 5,
        };
        self.verdicts[idx].inc();
    }

    pub(crate) fn observe_execute_ns(&self, ns: u64) {
        self.execute_ns.observe(ns);
    }

    pub(crate) fn count_op(&mut self, key: FnKey) {
        let wire = key.to_wire();
        let counter = self.invocations.entry(wire).or_insert_with(|| {
            let label = format!("{key:?}");
            let mut all: Vec<(&str, &str)> =
                self.labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
            all.push(("fn", label.as_str()));
            self.registry.counter("dip_fn_invocations_total", "Executed FN operations by key", &all)
        });
        counter.inc();
    }
}

impl std::fmt::Debug for RouterMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouterMetrics").field("labels", &self.labels).finish_non_exhaustive()
    }
}

//! ICMP-like control messages (§2.4).
//!
//! "The inbound router may receive a DIP packet carrying an FN that the AS
//! has not supported yet. If this FN requires all on-path ASes to
//! participate ... the router should return an FN unsupported message to
//! notify the source through a mechanism similar to ICMP."
//!
//! Control messages travel as the payload of a DIP packet whose
//! `next_header` is [`CONTROL_NEXT_HEADER`].

use dip_wire::error::{ensure_len, Result, WireError};

/// `next_header` value identifying a DIP control message payload.
pub const CONTROL_NEXT_HEADER: u8 = 0xFD;

/// Control message types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlMessage {
    /// An on-path node does not support a required FN.
    FnUnsupported {
        /// The offending operation key (wire value, tag bit stripped).
        key: u16,
        /// Identifier of the node that rejected the packet.
        node_id: u64,
        /// Index of the FN triple in the original packet.
        fn_index: u8,
    },
    /// Hop limit expired at a node (diagnostic analogue of ICMP
    /// time-exceeded).
    HopLimitExceeded {
        /// Identifier of the node where the hop limit expired.
        node_id: u64,
    },
}

const TYPE_FN_UNSUPPORTED: u8 = 1;
const TYPE_HOP_LIMIT: u8 = 2;

impl ControlMessage {
    /// Serializes to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            ControlMessage::FnUnsupported { key, node_id, fn_index } => {
                let mut out = vec![TYPE_FN_UNSUPPORTED];
                out.extend_from_slice(&key.to_be_bytes());
                out.extend_from_slice(&node_id.to_be_bytes());
                out.push(*fn_index);
                out
            }
            ControlMessage::HopLimitExceeded { node_id } => {
                let mut out = vec![TYPE_HOP_LIMIT];
                out.extend_from_slice(&node_id.to_be_bytes());
                out
            }
        }
    }

    /// Parses from wire bytes.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        ensure_len(buf, 1)?;
        match buf[0] {
            TYPE_FN_UNSUPPORTED => {
                ensure_len(buf, 12)?;
                Ok(ControlMessage::FnUnsupported {
                    key: u16::from_be_bytes([buf[1], buf[2]]),
                    node_id: u64::from_be_bytes(buf[3..11].try_into().unwrap()),
                    fn_index: buf[11],
                })
            }
            TYPE_HOP_LIMIT => {
                ensure_len(buf, 9)?;
                Ok(ControlMessage::HopLimitExceeded {
                    node_id: u64::from_be_bytes(buf[1..9].try_into().unwrap()),
                })
            }
            _ => Err(WireError::Malformed("unknown control message type")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_unsupported_roundtrip() {
        let m = ControlMessage::FnUnsupported { key: 7, node_id: 0xdeadbeef, fn_index: 2 };
        assert_eq!(ControlMessage::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn hop_limit_roundtrip() {
        let m = ControlMessage::HopLimitExceeded { node_id: 42 };
        assert_eq!(ControlMessage::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn rejects_garbage() {
        assert!(ControlMessage::decode(&[]).is_err());
        assert!(ControlMessage::decode(&[9, 0, 0]).is_err());
        assert!(ControlMessage::decode(&[TYPE_FN_UNSUPPORTED, 0]).is_err());
    }
}

//! ICMP-like control messages (§2.4).
//!
//! "The inbound router may receive a DIP packet carrying an FN that the AS
//! has not supported yet. If this FN requires all on-path ASes to
//! participate ... the router should return an FN unsupported message to
//! notify the source through a mechanism similar to ICMP."
//!
//! Control messages travel as the payload of a DIP packet whose
//! `next_header` is [`CONTROL_NEXT_HEADER`].

use dip_tables::xia_table::XiaNextHop;
use dip_tables::Port;
use dip_wire::error::{ensure_len, Result, WireError};
use dip_wire::ipv4::Ipv4Addr;
use dip_wire::ipv6::Ipv6Addr;
use dip_wire::ndn::Name;
use dip_wire::xia::{Xid, XidType};

/// `next_header` value identifying a DIP control message payload.
pub const CONTROL_NEXT_HEADER: u8 = 0xFD;

/// One adjacency reported in an LSA: the neighbor's node id and the
/// advertised cost of the link toward it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LsaLink {
    /// Neighbor node id.
    pub neighbor: u64,
    /// Link cost (SPF metric).
    pub cost: u32,
}

/// What a node announces it can deliver locally, carried inside its LSA.
///
/// The DIP control plane is protocol-agnostic the same way the dataplane
/// is: a single LSA carries the origin's IPv4/IPv6 prefixes, NDN name
/// prefixes, and XIA principals, so one SPF run compiles all five
/// protocol tables.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Announcements {
    /// IPv4 prefixes: (address, prefix length, egress port *at the
    /// origin* — `Port` is only meaningful on the originating node; remote
    /// nodes route toward the origin instead).
    pub v4: Vec<(Ipv4Addr, u8, Port)>,
    /// IPv6 prefixes.
    pub v6: Vec<(Ipv6Addr, u8, Port)>,
    /// NDN name prefixes.
    pub names: Vec<(Name, Port)>,
    /// XIA principals. `XiaNextHop::Local` marks sinks terminating at the
    /// origin itself; remote nodes translate it to a port toward the
    /// origin.
    pub xia: Vec<(XidType, Xid, XiaNextHop)>,
}

impl Announcements {
    /// True when nothing is announced.
    pub fn is_empty(&self) -> bool {
        self.v4.is_empty() && self.v6.is_empty() && self.names.is_empty() && self.xia.is_empty()
    }
}

/// A link-state advertisement: one node's view of its adjacencies and the
/// destinations it originates, flooded network-wide.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lsa {
    /// Originating node id.
    pub origin: u64,
    /// Monotonic sequence number (newer wins).
    pub seq: u32,
    /// Age in flooding hops (incremented on re-flood; dropped at
    /// `max_age` to bound stale circulation).
    pub age: u32,
    /// The origin's live adjacencies.
    pub links: Vec<LsaLink>,
    /// What the origin can deliver locally.
    pub announce: Announcements,
}

/// Control message types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlMessage {
    /// An on-path node does not support a required FN.
    FnUnsupported {
        /// The offending operation key (wire value, tag bit stripped).
        key: u16,
        /// Identifier of the node that rejected the packet.
        node_id: u64,
        /// Index of the FN triple in the original packet.
        fn_index: u8,
    },
    /// Hop limit expired at a node (diagnostic analogue of ICMP
    /// time-exceeded).
    HopLimitExceeded {
        /// Identifier of the node where the hop limit expired.
        node_id: u64,
    },
    /// Periodic neighbor-liveness beacon (control plane, §2.4 analogue of
    /// OSPF HELLO). Carried hop-by-hop: never forwarded.
    Hello {
        /// Sender's node id.
        node_id: u64,
    },
    /// A flooded link-state advertisement.
    LinkStateAdvertisement(Lsa),
    /// Hop-by-hop acknowledgement of an LSA (stops retransmission).
    LsaAck {
        /// Origin of the acknowledged LSA.
        origin: u64,
        /// Sequence number acknowledged.
        seq: u32,
    },
}

const TYPE_FN_UNSUPPORTED: u8 = 1;
const TYPE_HOP_LIMIT: u8 = 2;
const TYPE_HELLO: u8 = 3;
const TYPE_LSA: u8 = 4;
const TYPE_LSA_ACK: u8 = 5;

/// XIA next-hop kind bytes on the wire.
const XIA_KIND_LOCAL: u8 = 0;
const XIA_KIND_PORT: u8 = 1;

fn read_u16(buf: &[u8], off: usize) -> Result<(u16, usize)> {
    ensure_len(buf, off + 2)?;
    Ok((u16::from_be_bytes([buf[off], buf[off + 1]]), off + 2))
}

fn read_u32(buf: &[u8], off: usize) -> Result<(u32, usize)> {
    ensure_len(buf, off + 4)?;
    Ok((u32::from_be_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]]), off + 4))
}

fn read_u64(buf: &[u8], off: usize) -> Result<(u64, usize)> {
    ensure_len(buf, off + 8)?;
    let v = u64::from_be_bytes(buf[off..off + 8].try_into().expect("length checked"));
    Ok((v, off + 8))
}

fn encode_lsa(lsa: &Lsa, out: &mut Vec<u8>) {
    out.extend_from_slice(&lsa.origin.to_be_bytes());
    out.extend_from_slice(&lsa.seq.to_be_bytes());
    out.extend_from_slice(&lsa.age.to_be_bytes());
    out.extend_from_slice(&(lsa.links.len() as u16).to_be_bytes());
    for l in &lsa.links {
        out.extend_from_slice(&l.neighbor.to_be_bytes());
        out.extend_from_slice(&l.cost.to_be_bytes());
    }
    let a = &lsa.announce;
    out.extend_from_slice(&(a.v4.len() as u16).to_be_bytes());
    for (addr, len, port) in &a.v4 {
        out.extend_from_slice(&addr.0);
        out.push(*len);
        out.extend_from_slice(&port.to_be_bytes());
    }
    out.extend_from_slice(&(a.v6.len() as u16).to_be_bytes());
    for (addr, len, port) in &a.v6 {
        out.extend_from_slice(&addr.0);
        out.push(*len);
        out.extend_from_slice(&port.to_be_bytes());
    }
    // Name TLVs are bounded at 255 bytes by construction (`encode_tlv`
    // refuses anything longer); an unencodable name is simply not
    // announced rather than poisoning the whole LSA.
    let names: Vec<(Vec<u8>, Port)> = a
        .names
        .iter()
        .filter_map(|(name, port)| name.encode_tlv().ok().map(|tlv| (tlv, *port)))
        .collect();
    out.extend_from_slice(&(names.len() as u16).to_be_bytes());
    for (tlv, port) in &names {
        out.extend_from_slice(&(tlv.len() as u16).to_be_bytes());
        out.extend_from_slice(tlv);
        out.extend_from_slice(&port.to_be_bytes());
    }
    out.extend_from_slice(&(a.xia.len() as u16).to_be_bytes());
    for (ty, xid, nh) in &a.xia {
        out.extend_from_slice(&ty.to_wire().to_be_bytes());
        out.extend_from_slice(&xid.0);
        match nh {
            XiaNextHop::Local => {
                out.push(XIA_KIND_LOCAL);
                out.extend_from_slice(&0u32.to_be_bytes());
            }
            XiaNextHop::Port(p) => {
                out.push(XIA_KIND_PORT);
                out.extend_from_slice(&p.to_be_bytes());
            }
        }
    }
}

fn decode_lsa(buf: &[u8]) -> Result<Lsa> {
    let (origin, off) = read_u64(buf, 0)?;
    let (seq, off) = read_u32(buf, off)?;
    let (age, off) = read_u32(buf, off)?;

    // Element counts are attacker-controlled: every loop bounds itself
    // with per-element `ensure_len` and plain `push` (no `with_capacity`
    // from a wire count), so a forged count yields `Truncated`, never an
    // over-allocation.
    let (n_links, mut off) = read_u16(buf, off)?;
    let mut links = Vec::new();
    for _ in 0..n_links {
        let (neighbor, o) = read_u64(buf, off)?;
        let (cost, o) = read_u32(buf, o)?;
        links.push(LsaLink { neighbor, cost });
        off = o;
    }

    let mut announce = Announcements::default();
    let (n_v4, mut off) = read_u16(buf, off)?;
    for _ in 0..n_v4 {
        ensure_len(buf, off + 5)?;
        let addr = Ipv4Addr([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]]);
        let len = buf[off + 4];
        let (port, o) = read_u32(buf, off + 5)?;
        if len > 32 {
            return Err(WireError::Malformed("v4 prefix length > 32"));
        }
        announce.v4.push((addr, len, port));
        off = o;
    }

    let (n_v6, mut off) = read_u16(buf, off)?;
    for _ in 0..n_v6 {
        ensure_len(buf, off + 17)?;
        let addr = Ipv6Addr(buf[off..off + 16].try_into().expect("length checked"));
        let len = buf[off + 16];
        let (port, o) = read_u32(buf, off + 17)?;
        if len > 128 {
            return Err(WireError::Malformed("v6 prefix length > 128"));
        }
        announce.v6.push((addr, len, port));
        off = o;
    }

    let (n_names, mut off) = read_u16(buf, off)?;
    for _ in 0..n_names {
        let (tlv_len, o) = read_u16(buf, off)?;
        let tlv_len = usize::from(tlv_len);
        ensure_len(buf, o + tlv_len)?;
        let (name, consumed) = Name::decode_tlv(&buf[o..o + tlv_len])?;
        if consumed != tlv_len {
            return Err(WireError::Malformed("name TLV length mismatch"));
        }
        let (port, o) = read_u32(buf, o + tlv_len)?;
        announce.names.push((name, port));
        off = o;
    }

    let (n_xia, mut off) = read_u16(buf, off)?;
    for _ in 0..n_xia {
        let (ty, o) = read_u32(buf, off)?;
        ensure_len(buf, o + 21)?;
        let xid = Xid(buf[o..o + 20].try_into().expect("length checked"));
        let kind = buf[o + 20];
        let (port, o) = read_u32(buf, o + 21)?;
        let nh = match kind {
            XIA_KIND_LOCAL => XiaNextHop::Local,
            XIA_KIND_PORT => XiaNextHop::Port(port),
            _ => return Err(WireError::Malformed("unknown XIA next-hop kind")),
        };
        announce.xia.push((XidType::from_wire(ty), xid, nh));
        off = o;
    }

    if off != buf.len() {
        return Err(WireError::Malformed("trailing bytes after LSA"));
    }
    Ok(Lsa { origin, seq, age, links, announce })
}

impl ControlMessage {
    /// Serializes to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            ControlMessage::FnUnsupported { key, node_id, fn_index } => {
                let mut out = vec![TYPE_FN_UNSUPPORTED];
                out.extend_from_slice(&key.to_be_bytes());
                out.extend_from_slice(&node_id.to_be_bytes());
                out.push(*fn_index);
                out
            }
            ControlMessage::HopLimitExceeded { node_id } => {
                let mut out = vec![TYPE_HOP_LIMIT];
                out.extend_from_slice(&node_id.to_be_bytes());
                out
            }
            ControlMessage::Hello { node_id } => {
                let mut out = vec![TYPE_HELLO];
                out.extend_from_slice(&node_id.to_be_bytes());
                out
            }
            ControlMessage::LinkStateAdvertisement(lsa) => {
                let mut out = vec![TYPE_LSA];
                encode_lsa(lsa, &mut out);
                out
            }
            ControlMessage::LsaAck { origin, seq } => {
                let mut out = vec![TYPE_LSA_ACK];
                out.extend_from_slice(&origin.to_be_bytes());
                out.extend_from_slice(&seq.to_be_bytes());
                out
            }
        }
    }

    /// Parses from wire bytes.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        ensure_len(buf, 1)?;
        match buf[0] {
            TYPE_FN_UNSUPPORTED => {
                ensure_len(buf, 12)?;
                Ok(ControlMessage::FnUnsupported {
                    key: u16::from_be_bytes([buf[1], buf[2]]),
                    node_id: u64::from_be_bytes(buf[3..11].try_into().unwrap()),
                    fn_index: buf[11],
                })
            }
            TYPE_HOP_LIMIT => {
                ensure_len(buf, 9)?;
                Ok(ControlMessage::HopLimitExceeded {
                    node_id: u64::from_be_bytes(buf[1..9].try_into().unwrap()),
                })
            }
            TYPE_HELLO => {
                ensure_len(buf, 9)?;
                Ok(ControlMessage::Hello {
                    node_id: u64::from_be_bytes(buf[1..9].try_into().unwrap()),
                })
            }
            TYPE_LSA => Ok(ControlMessage::LinkStateAdvertisement(decode_lsa(&buf[1..])?)),
            TYPE_LSA_ACK => {
                ensure_len(buf, 13)?;
                Ok(ControlMessage::LsaAck {
                    origin: u64::from_be_bytes(buf[1..9].try_into().unwrap()),
                    seq: u32::from_be_bytes(buf[9..13].try_into().unwrap()),
                })
            }
            _ => Err(WireError::Malformed("unknown control message type")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_unsupported_roundtrip() {
        let m = ControlMessage::FnUnsupported { key: 7, node_id: 0xdeadbeef, fn_index: 2 };
        assert_eq!(ControlMessage::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn hop_limit_roundtrip() {
        let m = ControlMessage::HopLimitExceeded { node_id: 42 };
        assert_eq!(ControlMessage::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn rejects_garbage() {
        assert!(ControlMessage::decode(&[]).is_err());
        assert!(ControlMessage::decode(&[9, 0, 0]).is_err());
        assert!(ControlMessage::decode(&[TYPE_FN_UNSUPPORTED, 0]).is_err());
    }

    fn sample_lsa() -> Lsa {
        Lsa {
            origin: 0x1122_3344_5566_7788,
            seq: 42,
            age: 3,
            links: vec![LsaLink { neighbor: 1, cost: 10 }, LsaLink { neighbor: 9, cost: 1 }],
            announce: Announcements {
                v4: vec![(Ipv4Addr::new(10, 0, 0, 0), 8, 2)],
                v6: vec![(Ipv6Addr::new([0x2001, 0xdb8, 0, 0, 0, 0, 0, 0]), 32, 3)],
                names: vec![(Name::parse("/video/seg1"), 4)],
                xia: vec![
                    (XidType::Hid, Xid::derive(b"host-a"), XiaNextHop::Local),
                    (XidType::Sid, Xid::derive(b"svc"), XiaNextHop::Port(7)),
                ],
            },
        }
    }

    #[test]
    fn hello_roundtrip() {
        let m = ControlMessage::Hello { node_id: 0xfeed };
        assert_eq!(ControlMessage::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn lsa_ack_roundtrip() {
        let m = ControlMessage::LsaAck { origin: 77, seq: 1234 };
        assert_eq!(ControlMessage::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn lsa_roundtrip_with_all_announcement_kinds() {
        let m = ControlMessage::LinkStateAdvertisement(sample_lsa());
        assert_eq!(ControlMessage::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn empty_lsa_roundtrip() {
        let m = ControlMessage::LinkStateAdvertisement(Lsa {
            origin: 0,
            seq: 0,
            age: 0,
            links: Vec::new(),
            announce: Announcements::default(),
        });
        assert_eq!(ControlMessage::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn lsa_truncations_error_and_never_panic() {
        let bytes = ControlMessage::LinkStateAdvertisement(sample_lsa()).encode();
        for len in 0..bytes.len() {
            assert!(
                ControlMessage::decode(&bytes[..len]).is_err(),
                "truncation to {len} bytes must be rejected"
            );
        }
    }

    #[test]
    fn lsa_with_forged_element_count_is_truncated_not_allocated() {
        let mut bytes = ControlMessage::LinkStateAdvertisement(sample_lsa()).encode();
        // Byte 17..19 is the links count (type + origin + seq + age).
        bytes[17] = 0xff;
        bytes[18] = 0xff;
        assert!(
            matches!(ControlMessage::decode(&bytes), Err(WireError::Truncated { .. })),
            "forged count must surface as truncation, not allocation"
        );
    }

    #[test]
    fn lsa_trailing_bytes_rejected() {
        let mut bytes = ControlMessage::LinkStateAdvertisement(sample_lsa()).encode();
        bytes.push(0);
        assert_eq!(
            ControlMessage::decode(&bytes),
            Err(WireError::Malformed("trailing bytes after LSA"))
        );
    }

    #[test]
    fn lsa_rejects_out_of_range_prefix_lengths() {
        let mut lsa = sample_lsa();
        lsa.announce =
            Announcements { v4: vec![(Ipv4Addr::new(1, 2, 3, 4), 8, 0)], ..Default::default() };
        let mut bytes = ControlMessage::LinkStateAdvertisement(lsa).encode();
        // The prefix-length byte follows type + origin + seq + age +
        // links count + 2 links... recompute: locate the only 8 in the v4
        // entry: type(1)+origin(8)+seq(4)+age(4)+nlinks(2)+links(2*12)+nv4(2)+addr(4) = 49.
        assert_eq!(bytes[49], 8);
        bytes[49] = 33;
        assert_eq!(
            ControlMessage::decode(&bytes),
            Err(WireError::Malformed("v4 prefix length > 32"))
        );
    }
}

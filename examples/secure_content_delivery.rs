//! The paper's §2.3 walkthrough at network scale: a consumer retrieves
//! named content across a 3-router topology and verifies, per packet, that
//! (a) it came from the real producer and (b) it traversed exactly the
//! negotiated path — NDN+OPT over the discrete-event simulator.
//!
//! Run with: `cargo run --example secure_content_delivery`

use dip::prelude::*;
use dip::sim::engine::{Host, Network};
use dip::sim::topology::chain;
use std::collections::HashMap;

fn main() {
    println!("=== NDN+OPT: secure content delivery (§2.3 walkthrough) ===\n");

    // Key negotiation: the consumer↔producer pair agree on a session and
    // learn the dynamic keys of the three on-path routers. The *data* path
    // runs producer -> r2 -> r1 -> r0 -> consumer.
    let router_secrets: [[u8; 16]; 3] = [[1; 16], [2; 16], [3; 16]];
    let data_path: Vec<[u8; 16]> = router_secrets.iter().rev().copied().collect();
    let session = OptSession::establish([0xEE; 16], &[9; 16], &data_path);

    // Content catalog.
    let names: Vec<Name> = (0..5).map(|i| Name::parse(&format!("/hotnets/org/paper{i}"))).collect();
    let mut catalog = HashMap::new();
    for (i, n) in names.iter().enumerate() {
        catalog.insert(n.compact32(), format!("PDF bytes of paper {i}").into_bytes());
    }

    // Topology: consumer -- r0 -- r1 -- r2 -- producer.
    let mut net = Network::new(2022);
    let (consumer, routers, _producer) = chain(
        &mut net,
        3,
        Host::verifying_consumer(100, session.host_context()),
        Host::secure_producer(200, catalog, session.clone()),
        |i| router_secrets[i],
        20_000, // 20 µs links
    );
    for &r in &routers {
        for n in &names {
            net.router_mut(r).unwrap().state_mut().name_fib.add_route(n, NextHop::port(1));
        }
    }

    // The consumer requests every paper.
    for (i, n) in names.iter().enumerate() {
        let interest = dip::protocols::ndn_opt::interest(n, 64).to_bytes(&[]).unwrap();
        net.send(consumer, 0, interest, i as u64 * 500_000);
        println!("-> interest {n} ({} byte header)", 16);
    }
    net.run();

    println!();
    for d in &net.host(consumer).unwrap().delivered {
        println!(
            "<- {:>5.1} µs  verified={}  {:?}",
            d.time as f64 / 1000.0,
            d.verified,
            String::from_utf8_lossy(&d.payload)
        );
    }
    let all_verified = net.host(consumer).unwrap().delivered.iter().all(|d| d.verified);
    assert!(all_verified && net.host(consumer).unwrap().delivered.len() == names.len());
    println!(
        "\nAll {} items delivered with source authentication and path validation.",
        names.len()
    );
    println!(
        "Each data packet carried 6 composed FNs (F_PIT + F_parm + F_MAC + F_mark + F_ver)\n\
         in a {}-byte header — the paper's Table 2 NDN+OPT row.",
        dip::protocols::header_sizes::NDN_OPT
    );
}

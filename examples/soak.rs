//! A narrated soak: closed-loop NDN retrieval through a router chain,
//! with a scheduled link outage dropped into the middle of the run —
//! overload the failure, watch the loss, watch the recovery.
//!
//! Phase 1 establishes the healthy baseline (every interest answered).
//! Phase 2 replays the identical seeded soak but schedules a
//! [`FaultConfig::down_windows`] dead period on the last-hop link across
//! the middle third of the run: interests (and returning data) crossing
//! the link inside the window die silently, exactly like a pulled cable.
//! NDN has no transport-layer retransmit here, so those requests are
//! simply lost — but the soak keeps going, and every window issued after
//! the link comes back completes again. Phase 3 re-runs clean to show
//! nothing was left wedged.
//!
//! Run with: `cargo run --example soak`

use dip::sim::FaultConfig;
use dip::workload::{run_closed_loop, ClosedLoopConfig, ExchangeKind, WorkloadSpec};

fn main() {
    println!("=== soak: closed-loop NDN under a mid-run link outage ===\n");

    let spec = WorkloadSpec { seed: 42, catalog_size: 48, ..Default::default() };
    let cfg = ClosedLoopConfig {
        exchange: ExchangeKind::Ndn,
        requests: 48,
        concurrency: 4,
        routers: 3,
        link_latency_ns: 20_000,
        ..Default::default()
    };

    // Phase 1: healthy baseline — also tells us the soak's virtual span,
    // which we use to aim the outage at the middle third.
    let healthy = run_closed_loop(&spec, &cfg);
    println!(
        "phase 1  healthy   {:>3}/{} answered  p50 {:>6.1} us  p99 {:>6.1} us",
        healthy.completed,
        healthy.requests,
        healthy.p50_rtt_ns as f64 / 1000.0,
        healthy.p99_rtt_ns as f64 / 1000.0
    );
    assert_eq!(healthy.completed, healthy.requests, "baseline must be clean");

    // Phase 2: same seed, same soak, but the router->producer link is
    // administratively dead for the middle third of the run.
    let (from, until) = (healthy.sim_end_ns / 3, 2 * healthy.sim_end_ns / 3);
    let outage = ClosedLoopConfig {
        faults: FaultConfig::reliable().with_outage(from, until),
        ..cfg.clone()
    };
    let faulted = run_closed_loop(&spec, &outage);
    let lost = faulted.requests - faulted.completed;
    println!(
        "phase 2  outage    {:>3}/{} answered  ({} lost in the {:.1}-{:.1} ms dead window)",
        faulted.completed,
        faulted.requests,
        lost,
        from as f64 / 1e6,
        until as f64 / 1e6
    );
    assert!(lost > 0, "an outage across the middle third must lose requests");
    assert!(
        faulted.completed > 0,
        "requests outside the window must still complete — the soak recovers"
    );

    // Phase 3: clean re-run — no wedged PIT state, no lingering loss.
    let recovered = run_closed_loop(&spec, &cfg);
    println!(
        "phase 3  recovered {:>3}/{} answered  p50 {:>6.1} us  p99 {:>6.1} us",
        recovered.completed,
        recovered.requests,
        recovered.p50_rtt_ns as f64 / 1000.0,
        recovered.p99_rtt_ns as f64 / 1000.0
    );
    assert_eq!(recovered.completed, recovered.requests, "recovery must be total");

    println!(
        "\nThe link died mid-soak and came back; {} in-window requests were lost,\n\
         every request issued after the window was answered, and a clean re-run\n\
         of the same seed is byte-for-byte the healthy baseline again.",
        lost
    );
}

//! A narrated soak: closed-loop NDN retrieval through a router chain,
//! with a scheduled link outage dropped into the middle of the run —
//! overload the failure, watch the loss, watch the recovery.
//!
//! Phase 1 establishes the healthy baseline (every interest answered).
//! Phase 2 replays the identical seeded soak but schedules a
//! [`FaultConfig::down_windows`] dead period on the last-hop link across
//! the middle third of the run: interests (and returning data) crossing
//! the link inside the window die silently, exactly like a pulled cable.
//! NDN has no transport-layer retransmit here, so those requests are
//! simply lost — but the soak keeps going, and every window issued after
//! the link comes back completes again. Phase 3 re-runs clean to show
//! nothing was left wedged.
//!
//! Phase 4 changes the stressor: a route-update storm instead of an
//! outage. A mixed-protocol trace runs through a single router with a
//! deliberately tiny content store while a seeded `ChurnGen` flaps
//! routes and swaps compiled-table epochs under it — and the memory
//! story must stay boring: the content store and PIT never exceed their
//! capacity bounds, the compiled tables never grow past the flap pool,
//! and both eviction counters are exported through telemetry.
//!
//! Run with: `cargo run --example soak`

use dip::sim::FaultConfig;
use dip::telemetry::Registry;
use dip::workload::trace::INGRESS_PORT;
use dip::workload::{
    run_closed_loop, ChurnGen, ChurnSpec, ClosedLoopConfig, ExchangeKind, Mix, WorkloadSpec,
};

fn main() {
    println!("=== soak: closed-loop NDN under a mid-run link outage ===\n");

    let spec = WorkloadSpec { seed: 42, catalog_size: 48, ..Default::default() };
    let cfg = ClosedLoopConfig {
        exchange: ExchangeKind::Ndn,
        requests: 48,
        concurrency: 4,
        routers: 3,
        link_latency_ns: 20_000,
        ..Default::default()
    };

    // Phase 1: healthy baseline — also tells us the soak's virtual span,
    // which we use to aim the outage at the middle third.
    let healthy = run_closed_loop(&spec, &cfg);
    println!(
        "phase 1  healthy   {:>3}/{} answered  p50 {:>6.1} us  p99 {:>6.1} us",
        healthy.completed,
        healthy.requests,
        healthy.p50_rtt_ns as f64 / 1000.0,
        healthy.p99_rtt_ns as f64 / 1000.0
    );
    assert_eq!(healthy.completed, healthy.requests, "baseline must be clean");

    // Phase 2: same seed, same soak, but the router->producer link is
    // administratively dead for the middle third of the run.
    let (from, until) = (healthy.sim_end_ns / 3, 2 * healthy.sim_end_ns / 3);
    let outage = ClosedLoopConfig {
        faults: FaultConfig::reliable().with_outage(from, until),
        ..cfg.clone()
    };
    let faulted = run_closed_loop(&spec, &outage);
    let lost = faulted.requests - faulted.completed;
    println!(
        "phase 2  outage    {:>3}/{} answered  ({} lost in the {:.1}-{:.1} ms dead window)",
        faulted.completed,
        faulted.requests,
        lost,
        from as f64 / 1e6,
        until as f64 / 1e6
    );
    assert!(lost > 0, "an outage across the middle third must lose requests");
    assert!(
        faulted.completed > 0,
        "requests outside the window must still complete — the soak recovers"
    );

    // Phase 3: clean re-run — no wedged PIT state, no lingering loss.
    let recovered = run_closed_loop(&spec, &cfg);
    println!(
        "phase 3  recovered {:>3}/{} answered  p50 {:>6.1} us  p99 {:>6.1} us",
        recovered.completed,
        recovered.requests,
        recovered.p50_rtt_ns as f64 / 1000.0,
        recovered.p99_rtt_ns as f64 / 1000.0
    );
    assert_eq!(recovered.completed, recovered.requests, "recovery must be total");

    // Phase 4: memory stays bounded while routes churn. Small caches on
    // purpose — the point is that eviction, not growth, absorbs pressure.
    const CS_CAP: usize = 32;
    let churn_spec = WorkloadSpec { seed: 42, mix: Mix::all(), ..Default::default() };
    let mut gen =
        ChurnGen::new(&churn_spec, &ChurnSpec { rate_ups: 500_000, ..Default::default() });
    let mut router = churn_spec.build_router(0);
    router.state_mut().enable_content_store(CS_CAP);
    let registry = Registry::new();
    router.attach_metrics(&registry, &[("soak", "churn")]);
    gen.initial_snapshot().apply(router.state_mut());
    gen.note_epoch_swap();

    let trace = churn_spec.generate(200_000, 4_000);
    let pit_cap = 65_536; // RouterState's PIT bound
    let route_bound = gen.initial_snapshot().tables.as_ref().map_or(0, |t| t.route_count());
    let (mut max_cs, mut max_pit, mut max_routes) = (0usize, 0usize, 0usize);
    for p in &trace.packets {
        if let Some(snap) = gen.poll(p.at_ns) {
            max_routes = max_routes.max(snap.tables.as_ref().map_or(0, |t| t.route_count()));
            snap.apply(router.state_mut());
            gen.note_epoch_swap();
        }
        let mut buf = p.bytes.clone();
        let _ = router.process(&mut buf, INGRESS_PORT, p.at_ns);
        let st = router.state();
        max_cs = max_cs.max(st.content_store.as_ref().map_or(0, |cs| cs.len()));
        max_pit = max_pit.max(st.pit.len());
    }
    let stats = gen.stats();
    let cs_evictions = router.state().content_store.as_ref().map_or(0, |cs| cs.lru_evictions());
    println!(
        "phase 4  churn     {} pkts under {} deltas ({} swaps): cs {:>2}/{} (evicted {}), \
         pit {}/{}, routes peak {}",
        trace.packets.len(),
        stats.deltas_applied,
        stats.epoch_swaps,
        max_cs,
        CS_CAP,
        cs_evictions,
        max_pit,
        pit_cap,
        max_routes
    );
    assert!(stats.deltas_applied > 0, "the storm must actually run");
    assert_eq!(stats.full_rebuilds, 1, "churn applies deltas, never rebuilds");
    assert!(max_cs <= CS_CAP, "content store exceeded its capacity bound");
    assert!(max_pit <= pit_cap, "PIT exceeded its capacity bound");
    assert!(
        max_routes <= route_bound,
        "compiled tables grew past the initial state + flap pool ({max_routes} > {route_bound})"
    );
    let rendered = registry.render_prometheus();
    assert!(
        rendered.contains("dip_cs_evictions_total") && rendered.contains("dip_pit_expired"),
        "eviction counters must be exported"
    );

    println!(
        "\nThe link died mid-soak and came back; {} in-window requests were lost,\n\
         every request issued after the window was answered, and a clean re-run\n\
         of the same seed is byte-for-byte the healthy baseline again.",
        lost
    );
}

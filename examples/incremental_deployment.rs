//! Incremental deployment (§2.4): bootstrap, capability propagation,
//! heterogeneous ASes, FN-unsupported notifications, tunneling, and
//! border-router backward compatibility — the whole §2.3/§2.4 operations
//! story in one run.
//!
//! Run with: `cargo run --example incremental_deployment`

use dip::core::bootstrap::{CapabilityMap, FnDiscover, FnOffer};
use dip::core::border;
use dip::core::control::ControlMessage;
use dip::core::tunnel;
use dip::prelude::*;
use dip_wire::ipv6::{Ipv6Addr, Ipv6Repr};

fn main() {
    println!("=== Incremental deployment of DIP (§2.3–§2.4) ===\n");

    // --- 1. Bootstrap: a host discovers its access AS's FN set. ----------
    println!("1. bootstrap (DHCP-like FN discovery)");
    let full_as = FnRegistry::standard();
    let partial_as = FnRegistry::with_keys(&[FnKey::Match32, FnKey::Match128, FnKey::Source]);
    let discover = FnDiscover { xid: 7 };
    let offer = FnOffer::from_registry(discover.xid, 65001, &partial_as);
    let parsed = FnOffer::decode(&offer.encode()).unwrap();
    println!(
        "   AS 65001 offers: {:?}",
        parsed.fn_keys().iter().map(|k| k.notation()).collect::<Vec<_>>()
    );

    // --- 2. Capability propagation (BGP-communities substitute). ---------
    println!("\n2. capability propagation across a 4-AS path");
    let mut caps = CapabilityMap::new();
    caps.announce_offer(&FnOffer::from_registry(1, 65001, &partial_as));
    caps.announce_offer(&FnOffer::from_registry(1, 65002, &full_as));
    caps.announce_offer(&FnOffer::from_registry(1, 65003, &full_as));
    caps.announce_offer(&FnOffer::from_registry(1, 65004, &full_as));
    let path = [65001u32, 65002, 65003, 65004];
    println!("   end-to-end usable keys: {:?}", caps.end_to_end(&path));
    println!("   OPT possible on path? {}", caps.path_supports(&path, FnKey::Mac));

    // --- 3. A participation FN hits a non-supporting AS. ------------------
    println!("\n3. FN-unsupported notification (ICMP-like)");
    let mut old_router =
        DipRouter::new(65001, [1; 16]).with_registry(FnRegistry::with_keys(&[FnKey::Match32]));
    let session = OptSession::establish([5; 16], &[6; 16], &[[1; 16]]);
    let mut buf = session.packet(b"x", 1, 64).to_bytes(b"x").unwrap();
    let (verdict, _) = old_router.process(&mut buf, 0, 0);
    match verdict {
        Verdict::Notify(ControlMessage::FnUnsupported { key, node_id, fn_index }) => {
            println!(
                "   router {node_id} returned FnUnsupported(key={key} = {}, fn #{fn_index})",
                FnKey::from_wire(key).notation()
            );
        }
        other => panic!("expected a notification, got {other:?}"),
    }

    // --- 4. Tunneling across a DIP-agnostic core. --------------------------
    println!("\n4. DIP-in-IPv6 tunnel across a legacy core");
    let inner = dip::protocols::ip::dip32_packet(
        dip_wire::ipv4::Ipv4Addr::new(10, 2, 0, 9),
        dip_wire::ipv4::Ipv4Addr::new(10, 1, 0, 9),
        64,
    )
    .to_bytes(b"island to island")
    .unwrap();
    let a = Ipv6Addr::new([0x2001, 0xdb8, 0, 1, 0, 0, 0, 1]);
    let b = Ipv6Addr::new([0x2001, 0xdb8, 0, 2, 0, 0, 0, 1]);
    let outer = tunnel::encap(&inner, a, b, 64).unwrap();
    println!(
        "   encap: {}B DIP -> {}B IPv6 (legacy core sees plain IPv6)",
        inner.len(),
        outer.len()
    );
    // A legacy core router forwards on the outer header only:
    let outer_hdr = Ipv6Repr::parse(&outer).unwrap();
    println!("   legacy core routes on outer dst {}", outer_hdr.dst);
    let recovered = tunnel::decap(&outer).unwrap();
    assert_eq!(recovered, inner);
    println!("   decap at the far island: inner packet intact");

    // --- 5. Border router backward compatibility. --------------------------
    println!("\n5. border router: legacy IPv6 traffic through a DIP domain");
    let legacy = Ipv6Repr {
        src: Ipv6Addr::new([0xfdaa, 0, 0, 0, 0, 0, 0, 1]),
        dst: Ipv6Addr::new([0xfdaa, 0, 0, 0, 0, 0, 0, 2]),
        next_header: 17,
        hop_limit: 60,
        payload_len: 0,
    }
    .to_bytes(b"legacy udp")
    .unwrap();
    let mut dip_form = border::encap_ipv6(&legacy).unwrap();
    println!(
        "   inbound border: +{}B DIP framing, IPv6 header now an FN location",
        dip_form.len() - legacy.len()
    );

    // DIP routers forward it with F_128_match on the embedded header.
    let mut core_router = DipRouter::new(2, [2; 16]);
    core_router.state_mut().ipv6_fib.add_route(
        Ipv6Addr::new([0xfdaa, 0, 0, 0, 0, 0, 0, 0]),
        16,
        NextHop::port(3),
    );
    let (verdict, _) = core_router.process(&mut dip_form, 0, 0);
    println!("   DIP core forwards it: {verdict:?}");
    assert_eq!(verdict, Verdict::Forward(vec![3]));

    let back = border::decap_ipv6(&dip_form).unwrap();
    assert_eq!(back, legacy);
    println!("   outbound border: original IPv6 packet restored byte-for-byte");

    println!("\nDeployment story: partial ASes skip what they can, notify on what they");
    println!("must run, tunnel across what they don't speak, and translate at borders.");
}

//! §2.4's security story, live: the FIB+PIT cache-poisoning combo, the
//! `F_pass` defense toggled *on the fly*, and the per-packet processing
//! budget stopping an FN-chain bomb.
//!
//! Run with: `cargo run --example attack_defense`

use dip::fnops::ops::pass::{issue_label, PASS_FIELD_BITS};
use dip::prelude::*;

fn attack_packet(name: &Name) -> Vec<u8> {
    // "An attacker can use both F_FIB and F_PIT in one packet and carry
    // maliciously constructed data to pollute the node's content cache."
    DipRepr {
        fns: vec![FnTriple::router(0, 32, FnKey::Fib), FnTriple::router(0, 32, FnKey::Pit)],
        locations: name.compact32().to_be_bytes().to_vec(),
        ..Default::default()
    }
    .to_bytes(b"EVIL BYTES")
    .unwrap()
}

fn main() {
    println!("=== §2.4 attacks and dynamic defenses ===\n");
    let name = Name::parse("/bank/homepage");

    let mut router = DipRouter::new(1, [0x11; 16]);
    router.state_mut().enable_content_store(64);
    router.state_mut().name_fib.add_route(&name, NextHop::port(9));

    // --- Phase 1: the attack works against an undefended cache. ----------
    println!("phase 1: no defense");
    let mut pkt = attack_packet(&name);
    let (v, _) = router.process(&mut pkt, 2, 0);
    println!("  attack packet verdict: {v:?}");
    let poisoned = router.state().content_store.as_ref().unwrap().peek(&name.compact32()).is_some();
    println!("  cache now poisoned: {poisoned}");
    assert!(poisoned);

    // An honest user asking for the page gets the attacker's bytes.
    let mut interest = dip::protocols::ndn::interest(&name, 64).to_bytes(&[]).unwrap();
    let (v, _) = router.process(&mut interest, 3, 1);
    if let Verdict::RespondCached(bytes) = &v {
        println!("  honest user served: {:?}\n", String::from_utf8_lossy(bytes));
    }

    // --- Phase 2: operator detects it, enables F_pass on the fly. --------
    println!("phase 2: operator enables the F_pass policy and purges the cache");
    router.state_mut().require_pass_for_cache = true;
    let purged = router.state_mut().content_store.as_mut().unwrap().purge_since(0);
    println!("  purged {purged} poisoned entr(y/ies)");

    let mut pkt = attack_packet(&name);
    let (v, _) = router.process(&mut pkt, 2, 10);
    let poisoned = router.state().content_store.as_ref().unwrap().peek(&name.compact32()).is_some();
    println!("  attack re-run verdict: {v:?}; cache poisoned: {poisoned}");
    assert!(!poisoned);

    // A legitimate producer with a valid AS-issued source label still gets
    // cached — the defense costs the attacker, not the ecosystem.
    let source_id = [0x0Au8; 16];
    let label = issue_label(&router.state().as_secret, &source_id);
    let mut locations = name.compact32().to_be_bytes().to_vec();
    locations.extend_from_slice(&source_id);
    locations.extend_from_slice(&label);
    let legit = DipRepr {
        fns: vec![
            FnTriple::router(32, PASS_FIELD_BITS, FnKey::Pass),
            FnTriple::router(0, 32, FnKey::Pit),
        ],
        locations,
        ..Default::default()
    }
    .to_bytes(b"the real homepage")
    .unwrap();
    // (answering a fresh pending interest)
    let mut interest = dip::protocols::ndn::interest(&name, 64).to_bytes(&[]).unwrap();
    let _ = router.process(&mut interest, 3, 20);
    let mut legit_buf = legit;
    let (v, _) = router.process(&mut legit_buf, 9, 21);
    let cached = router
        .state()
        .content_store
        .as_ref()
        .unwrap()
        .peek(&name.compact32())
        .map(|b| String::from_utf8_lossy(b).into_owned());
    println!("  legit producer verdict: {v:?}; cached: {cached:?}\n");
    assert_eq!(cached.as_deref(), Some("the real homepage"));

    // --- Phase 3: FN-chain bomb vs the processing budget. -----------------
    println!("phase 3: processing-budget defense");
    let mut fns = vec![FnTriple::router(16 * 8, 128, FnKey::Parm)];
    fns.extend((0..25).map(|_| FnTriple::router(0, 416, FnKey::Mac)));
    let bomb =
        DipRepr { fns, locations: vec![0u8; 68], ..Default::default() }.to_bytes(&[]).unwrap();
    let mut bomb_buf = bomb;
    let (v, stats) = router.process(&mut bomb_buf, 2, 30);
    println!(
        "  26-FN MAC bomb: verdict {v:?} after only {} FNs / {} cipher blocks",
        stats.fns_executed, stats.cost.cipher_blocks
    );
    assert_eq!(v, Verdict::Drop(DropReason::ProcessingBudgetExceeded));

    println!("\nSame primitive that creates the attack surface (composable FNs) also");
    println!("carries the defense: policies are just more FNs plus hard budgets.");
}

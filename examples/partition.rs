//! A narrated partition scenario: a k=4 fat-tree of twenty routers runs
//! the real control plane — HELLO adjacencies, LSA flooding, SPF — and
//! then loses every link at the producer's edge switch mid-run.
//!
//! Phase "warm" round-robins the whole content catalog as NDN interests
//! (plus IPv4 probes), so every object ends up cached along the return
//! path — including at the consumer's own edge switch. Phase "outage"
//! opens the partition window: the producer island goes dark while five
//! protocol mixes keep sending. IPv4/IPv6/XIA and the encapsulated
//! legacy island can only lose what crosses the dead links; NDN keeps
//! answering from the caches the warm phase left behind. Phase
//! "recovery" is a flash crowd (hot Zipf head) after the heal, and the
//! report's `reconvergence_ns` measures heal → first post-heal IPv4
//! delivery through the re-converged tables.
//!
//! The network-wide accounting identity
//! (`packets == sent - link_dropped`) is asserted across the whole run,
//! partition included, and the run is byte-deterministic: same spec,
//! same fingerprint.
//!
//! Run with: `cargo run --example partition`

use dip::scenario::{run_scenario, ScenarioProtocol, ScenarioSpec};

fn main() {
    println!("=== partition: fat-tree scenario over the real control plane ===\n");

    let window = 400_000; // virtual ns the producer island stays dark
    let spec = ScenarioSpec::partition(4, window, 24, 7);
    let report = run_scenario(&spec);

    println!(
        "topology {}  ({} routers, {} links)  converged={}\n",
        report.topology, report.routers, report.links, report.converged
    );
    assert!(report.converged, "every LSDB must hold every origin before traffic starts");

    for phase in &report.phases {
        let window = phase
            .partition_window
            .map_or_else(|| "no partition".to_string(), |w| format!("partition {w} ns"));
        println!("phase {:<9} [{:>8}..{:>8}]  {}", phase.name, phase.start, phase.end, window);
        for t in &phase.traffic {
            println!(
                "  {:<9} {:>3}/{:<3} delivered  ({:.0}%)",
                t.protocol,
                t.delivered,
                t.injected,
                phase.delivery_fraction(t.protocol).unwrap_or(0.0) * 100.0
            );
        }
        if !phase.drops.is_empty() {
            let drops: Vec<String> =
                phase.drops.iter().map(|(reason, n)| format!("{reason}={n}")).collect();
            println!("  drops: {}  (link_dropped {})", drops.join(" "), phase.link_dropped);
        }
        if let Some(ns) = phase.reconvergence_ns {
            println!("  reconvergence: {ns} ns from heal to first post-heal IPv4 delivery");
        }
    }

    let warm = report.phase("warm").expect("warm phase");
    let outage = report.phase("outage").expect("outage phase");
    let recovery = report.phase("recovery").expect("recovery phase");

    // The warm sweep must leave the caches populated end to end.
    assert_eq!(warm.delivery_fraction(ScenarioProtocol::Ndn.label()), Some(1.0));
    assert!(outage.cs_entries > 0, "caches survive into the outage");

    // The paper's divergence point: identical graph, identical outage —
    // the host-based protocols lose whatever crossed the dead links,
    // the content-named one answers from in-network caches.
    let ndn = outage.delivery_fraction("ndn").expect("ndn injected");
    let ipv4 = outage.delivery_fraction("ipv4").expect("ipv4 injected");
    assert!(ndn > ipv4, "NDN must out-deliver IPv4 through the partition ({ndn:.2} vs {ipv4:.2})");

    // After the heal the flash crowd completes for everyone again.
    for t in &recovery.traffic {
        assert_eq!(
            recovery.delivery_fraction(t.protocol),
            Some(1.0),
            "{} must fully recover after the heal",
            t.protocol
        );
    }
    assert!(outage.reconvergence_ns.is_some(), "the heal must be measurable");
    assert!(report.identity_ok, "accounting identity must hold across the partition");

    println!(
        "\nThe producer island vanished for {} ns. NDN delivered {:.0}% from\n\
         in-network caches while IPv4 managed {:.0}%; after the heal SPF\n\
         re-converged in {} ns and every protocol completed again.\n\
         accounting: {} packets == {} sent - {} link-dropped  fingerprint {:016x}",
        window,
        ndn * 100.0,
        ipv4 * 100.0,
        outage.reconvergence_ns.unwrap_or(0),
        report.accounted,
        report.sent,
        report.link_dropped,
        report.fingerprint
    );
}

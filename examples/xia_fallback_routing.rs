//! XIA over DIP: evolvable addressing with fallback.
//!
//! Demonstrates XIA's signature property through the DIP realization: a
//! content packet whose intent is a CID routes *directly* at CID-aware
//! routers, while legacy routers that have never heard of content
//! addressing still deliver it via the AD→HID fallback path — no flag day.
//!
//! Run with: `cargo run --example xia_fallback_routing`

use dip::prelude::*;
use dip::protocols::xia;
use dip_tables::XiaNextHop;

fn route(router: &mut DipRouter, buf: &mut [u8]) -> Verdict {
    let (verdict, _) = router.process(buf, 0, 0);
    verdict
}

fn main() {
    println!("=== XIA fallback routing over DIP ===\n");

    let movie = Xid::derive(b"cid:the-matrix");
    let ad = Xid::derive(b"ad:campus");
    let server = Xid::derive(b"hid:media-server");

    // Destination address: intent = the content, fallback via AD -> HID.
    let dag = Dag::direct_with_fallback(DagNode::sink(XidType::Cid, movie), ad, server).unwrap();
    println!("address DAG: src -> CID (intent)");
    println!("             src -> AD -> HID -> CID (fallback)\n");

    // --- Router A: modern, content-aware. --------------------------------
    let mut modern = DipRouter::new(1, [1; 16]);
    modern.state_mut().xia.add_route(XidType::Cid, movie, XiaNextHop::Port(7));
    modern.state_mut().xia.add_route(XidType::Ad, ad, XiaNextHop::Port(1));
    let mut buf = xia::packet(&dag, 64).to_bytes(b"bits").unwrap();
    let v = route(&mut modern, &mut buf);
    println!("content-aware router : {v:?}   (routed on the CID intent directly)");
    assert_eq!(v, Verdict::Forward(vec![7]));

    // --- Router B: legacy, only understands ADs. --------------------------
    let mut legacy = DipRouter::new(2, [2; 16]);
    legacy.state_mut().xia.add_route(XidType::Ad, ad, XiaNextHop::Port(2));
    let mut buf = xia::packet(&dag, 64).to_bytes(b"bits").unwrap();
    let v = route(&mut legacy, &mut buf);
    println!("legacy (AD-only)     : {v:?}   (CID unknown -> AD fallback)");
    assert_eq!(v, Verdict::Forward(vec![2]));

    // --- The AD's border router: advances the DAG and hands to the HID. ---
    let mut border = DipRouter::new(3, [3; 16]);
    border.state_mut().xia.add_route(XidType::Ad, ad, XiaNextHop::Local);
    border.state_mut().xia.add_route(XidType::Hid, server, XiaNextHop::Port(4));
    let mut buf = xia::packet(&dag, 64).to_bytes(b"bits").unwrap();
    let v = route(&mut border, &mut buf);
    let updated = xia::parse_dag(DipPacket::new_checked(&buf[..]).unwrap().locations()).unwrap();
    println!(
        "AD border router     : {v:?}   (last_visited advanced to node {} in the packet)",
        updated.last_visited
    );
    assert_eq!(v, Verdict::Forward(vec![4]));
    assert_eq!(updated.last_visited, 1);

    // --- The media server: owns the HID and the content. ------------------
    let mut host = DipRouter::new(4, [4; 16]);
    host.state_mut().xia.add_route(XidType::Hid, server, XiaNextHop::Local);
    host.state_mut().xia.add_route(XidType::Cid, movie, XiaNextHop::Local);
    let v = route(&mut host, &mut buf); // continue with the updated packet
    println!("media server         : {v:?}    (walked HID -> CID locally)");
    assert_eq!(v, Verdict::Deliver);

    println!(
        "\nSame packet, same two FNs (F_DAG, F_intent) — four routers with four\n\
         different capability levels all moved it toward the intent."
    );
}

//! dipdump — a tiny tcpdump for DIP (smoltcp ships the same demo).
//!
//! Runs a short NDN+OPT session in the simulator with packet capture
//! enabled, writes the capture to `dipdump.pcap` (libpcap format,
//! DLT_USER0 — openable in Wireshark), then reads the file back and
//! dissects every frame with the wire-level pretty printer.
//!
//! Run with: `cargo run --example dipdump`
//! Optionally pass an output path: `cargo run --example dipdump -- /tmp/x.pcap`
//! Pass `--metrics` to also print the network's telemetry registry in
//! Prometheus text exposition format after the dissection.

use dip::prelude::*;
use dip::sim::engine::{Host, Network};
use dip::sim::pcap;
use dip::sim::topology::chain;
use dip::wire::pretty::dissect;
use std::collections::HashMap;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let show_metrics = args.iter().any(|a| a == "--metrics");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "dipdump.pcap".to_string());

    // --- A short secure content retrieval, captured. ----------------------
    let name = Name::parse("/hotnets/org/dip");
    let router_secret = [0x21u8; 16];
    let session = OptSession::establish([0x44; 16], &[5; 16], &[router_secret]);
    let mut contents = HashMap::new();
    contents.insert(name.compact32(), b"the captured content".to_vec());

    let mut net = Network::new(11);
    net.enable_capture();
    let (consumer, routers, _) = chain(
        &mut net,
        1,
        Host::verifying_consumer(1, session.host_context()),
        Host::secure_producer(2, contents, session.clone()),
        |_| router_secret,
        15_000,
    );
    net.router_mut(routers[0]).unwrap().state_mut().name_fib.add_route(&name, NextHop::port(1));

    net.send(consumer, 0, dip::protocols::ndn_opt::interest(&name, 64).to_bytes(&[]).unwrap(), 0);
    net.run();
    assert_eq!(net.host(consumer).unwrap().delivered.len(), 1, "retrieval must succeed");

    // --- Write the pcap. ---------------------------------------------------
    let mut file = Vec::new();
    let frames = net.write_pcap(&mut file).expect("pcap serialization");
    std::fs::write(&out_path, &file).expect("write pcap file");
    println!("captured {frames} frames -> {out_path} ({} bytes)\n", file.len());

    // --- Read it back and dissect, tcpdump style. --------------------------
    let bytes = std::fs::read(&out_path).expect("read pcap back");
    let packets = pcap::parse(&bytes).expect("valid pcap");
    for (i, (at, frame)) in packets.iter().enumerate() {
        println!("frame {i} @ {:.3} ms, {} bytes", *at as f64 / 1e6, frame.len());
        for line in dissect(frame).lines() {
            println!("    {line}");
        }
    }

    println!("(open {out_path} in Wireshark: link type DLT_USER0, raw DIP bytes)");

    // --- Per-hop telemetry (--metrics). ------------------------------------
    if show_metrics {
        println!("\n--- metrics (Prometheus text exposition) ---");
        print!("{}", net.metrics_report());
    }
}

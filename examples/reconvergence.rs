//! Control-plane reconvergence: four routers in a diamond discover each
//! other via HELLOs, flood LSAs, run SPF, and publish route snapshots —
//! then the primary link dies mid-run, the dead interval fires, and the
//! network reroutes a packet around the failure without any manual
//! table edits.
//!
//! Run with: `cargo run --example reconvergence`

use dip::controlplane::{AgentConfig, ControlAgent, ControlNode};
use dip::prelude::*;
use dip::protocols::ip;
use dip::sim::engine::{Host, Network};
use dip::wire::ipv4::Ipv4Addr;

fn router(id: u64, ports: Vec<u32>) -> ControlNode<DipRouter> {
    ControlNode::new(
        DipRouter::new(id, [id as u8; 16]),
        ControlAgent::new(id, ports, AgentConfig::default()),
    )
}

fn main() {
    println!("=== Distributed routing + failure reconvergence ===\n");

    //   h ── r0 ── r1 ── p        primary: h→r0→r1→p
    //         │     │
    //        r2 ── r3             detour:  h→r0→r2→r3→r1→p
    let mut net = Network::new(1);
    let r0 = net.add_router_node(Box::new(router(1, vec![0, 1, 2])));
    let r1 = {
        let mut n = router(2, vec![0, 1, 2]);
        n.agent_mut().announce_v4(Ipv4Addr::new(10, 0, 0, 0), 8, 1);
        net.add_router_node(Box::new(n))
    };
    let r2 = net.add_router_node(Box::new(router(3, vec![0, 1])));
    let r3 = net.add_router_node(Box::new(router(4, vec![0, 1])));
    let h = net.add_host(Host::consumer(100));
    let p = net.add_host(Host::consumer(200));
    net.connect(h, 0, r0, 0, 1_000);
    net.connect(r0, 1, r1, 0, 1_000);
    net.connect(r0, 2, r2, 0, 1_000);
    net.connect(r1, 1, p, 0, 1_000);
    net.connect(r1, 2, r3, 1, 1_000);
    net.connect(r2, 1, r3, 0, 1_000);

    // One run: converge cold, verify a packet, kill the r0–r1 link at
    // t=1ms, and send a second packet after reconvergence.
    for r in [r0, r1, r2, r3] {
        net.schedule_control_ticks(r, 0, 50_000, 2_200_000);
    }
    net.schedule_link_down(1_000_000, r0, 1);
    let packet = |tag: u8| {
        ip::dip32_packet(Ipv4Addr::new(10, 0, 0, tag), Ipv4Addr::new(192, 168, 0, 1), 64)
            .to_bytes(&[tag])
            .unwrap()
    };
    net.send(h, 0, packet(1), 800_000); // while the primary path is up
    net.send(h, 0, packet(2), 2_000_000); // after the failure
    net.run();

    let snap = net.metrics_snapshot();
    println!("deliveries at p:            {}", net.host(p).unwrap().delivered.len());
    println!("HELLOs sent:                {}", snap.get("dip_ctrl_hello_total"));
    println!("LSA floods:                 {}", snap.get("dip_ctrl_lsa_flood_total"));
    println!("SPF runs published:         {}", snap.get("dip_ctrl_spf_runs_total"));
    println!(
        "convergence samples (mean): {} ({} ns)",
        snap.get("dip_ctrl_convergence_ns_count"),
        snap.get("dip_ctrl_convergence_ns_sum") / snap.get("dip_ctrl_convergence_ns_count").max(1)
    );
    println!(
        "r2 forwarded (detour only): {}",
        snap.sum_where("dip_packets_total", &[("node", "2"), ("outcome", "forwarded")])
    );
    println!("link drops on severed link: {}", snap.get("dip_link_dropped_total"));
    assert_eq!(net.host(p).unwrap().delivered.len(), 2, "both packets must arrive");
    assert_eq!(
        snap.get("dip_packets_total"),
        snap.get("dip_node_sent_total") - snap.get("dip_link_dropped_total"),
        "accounting identity"
    );
    println!("\nBoth packets delivered; the second took the r2/r3 detour.");
}

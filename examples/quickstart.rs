//! Quickstart: one router, all five paper protocols, ten minutes.
//!
//! Builds each of §3's protocol realizations, pushes a packet of each
//! through a single DIP router, and prints what the FN chain did — the
//! fastest way to see the decompose/compose story end to end.
//!
//! Run with: `cargo run --example quickstart`

use dip::prelude::*;
use dip::protocols::{ip, ndn, ndn_opt, opt::OptSession, xia};
use dip_tables::XiaNextHop;
use dip_wire::ipv4::Ipv4Addr;
use dip_wire::ipv6::Ipv6Addr;

fn show(label: &str, repr: &DipRepr, verdict: &Verdict, fns: u32) {
    let triples: Vec<String> = repr
        .fns
        .iter()
        .map(|t| {
            format!(
                "{}(loc:{},len:{}{})",
                t.key.notation(),
                t.field_loc,
                t.field_len,
                if t.host { ",host" } else { "" }
            )
        })
        .collect();
    println!("{label}");
    println!("  header {:>3} bytes | FNs: {}", repr.header_len(), triples.join(" "));
    println!("  router executed {fns} FN(s) -> {verdict:?}");
    println!();
}

fn main() {
    // --- One DIP-capable router with state for every protocol. ----------
    let router_secret = [0x42u8; 16];
    let mut router = DipRouter::new(1, router_secret);
    let st = router.state_mut();
    st.ipv4_fib.add_route(Ipv4Addr::new(10, 0, 0, 0), 8, NextHop::port(1));
    st.ipv6_fib.add_route(Ipv6Addr::new([0xfdaa, 0, 0, 0, 0, 0, 0, 0]), 16, NextHop::port(2));
    let name = Name::parse("hotnets.org");
    st.name_fib.add_route(&name, NextHop::port(3));
    st.xia.add_route(XidType::Cid, Xid::derive(b"a-movie"), XiaNextHop::Port(4));
    router.config_mut().default_port = Some(5); // for chains with no addressing FN

    println!("=== DIP quickstart: five L3 protocols through one router ===\n");

    // --- 1. IPv4 over DIP (DIP-32). --------------------------------------
    let repr = ip::dip32_packet(Ipv4Addr::new(10, 1, 2, 3), Ipv4Addr::new(192, 168, 0, 1), 64);
    let mut buf = repr.to_bytes(b"ipv4 payload").unwrap();
    let (verdict, stats) = router.process(&mut buf, 0, 0);
    show("1. IP forwarding (DIP-32)", &repr, &verdict, stats.fns_executed);

    // --- 2. IPv6 over DIP (DIP-128). --------------------------------------
    let repr = ip::dip128_packet(
        Ipv6Addr::new([0xfdaa, 0, 0, 0, 0, 0, 0, 9]),
        Ipv6Addr::new([0xfd00, 0, 0, 0, 0, 0, 0, 1]),
        64,
    );
    let mut buf = repr.to_bytes(b"ipv6 payload").unwrap();
    let (verdict, stats) = router.process(&mut buf, 0, 1);
    show("2. IP forwarding (DIP-128)", &repr, &verdict, stats.fns_executed);

    // --- 3. NDN: interest out, data back. ---------------------------------
    let repr = ndn::interest(&name, 64);
    let mut buf = repr.to_bytes(&[]).unwrap();
    let (verdict, stats) = router.process(&mut buf, /*consumer port*/ 7, 2);
    show("3a. NDN interest", &repr, &verdict, stats.fns_executed);

    let repr = ndn::data(&name, 64);
    let mut buf = repr.to_bytes(b"the content").unwrap();
    let (verdict, stats) = router.process(&mut buf, /*producer port*/ 3, 3);
    show("3b. NDN data (follows the PIT back)", &repr, &verdict, stats.fns_executed);

    // --- 4. OPT: source authentication + path validation. -----------------
    let session = OptSession::establish([0xA5; 16], &[7; 16], &[router_secret]);
    let payload = b"authenticated payload";
    let repr = session.packet(payload, 1, 64);
    let mut buf = repr.to_bytes(payload).unwrap();
    let (verdict, stats) = router.process(&mut buf, 0, 4);
    show("4. OPT", &repr, &verdict, stats.fns_executed);

    // The destination host verifies source and path.
    let mut host_state = RouterState::new(99, [0; 16]);
    let delivery =
        deliver(&mut buf, &session.host_context(), &mut host_state, &FnRegistry::standard(), 5)
            .expect("verification");
    println!("   destination F_ver: verified = {}\n", delivery.verified);

    // --- 5. XIA: DAG with fallback. ---------------------------------------
    let dag = Dag::direct_with_fallback(
        DagNode::sink(XidType::Cid, Xid::derive(b"a-movie")),
        Xid::derive(b"ad-east"),
        Xid::derive(b"server-9"),
    )
    .unwrap();
    let repr = xia::packet(&dag, 64);
    let mut buf = repr.to_bytes(b"xia payload").unwrap();
    let (verdict, stats) = router.process(&mut buf, 0, 6);
    show("5. XIA (DAG + intent)", &repr, &verdict, stats.fns_executed);

    // --- 6. The derived protocol: NDN+OPT. --------------------------------
    let mut interest = ndn_opt::interest(&name, 64).to_bytes(&[]).unwrap();
    let _ = router.process(&mut interest, 7, 7); // re-arm the PIT
    let repr = ndn_opt::data(&session, &name, payload, 2, 64);
    let mut buf = repr.to_bytes(payload).unwrap();
    let (verdict, stats) = router.process(&mut buf, 3, 8);
    show("6. NDN+OPT (derived: secure content delivery)", &repr, &verdict, stats.fns_executed);
    let delivery =
        deliver(&mut buf, &session.host_context(), &mut host_state, &FnRegistry::standard(), 9)
            .expect("verification");
    println!("   consumer F_ver on the content: verified = {}", delivery.verified);

    println!("\nSame router, same twelve operation modules — five different network layers.");
}

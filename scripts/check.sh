#!/usr/bin/env bash
# Repo-wide lint + test gate. Run before every push; CI runs the same.
#
#   fmt     — formatting matches rustfmt.toml
#   clippy  — all targets, warnings are errors
#   benches — every benchmark harness compiles (they are exercised
#             manually, so an ordinary test run never builds them)
#   test    — the full workspace suite, offline
#   determ  — the dataplane determinism property explicitly, so a failure
#             is named in CI output rather than buried in the suite
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets --offline -- -D warnings

echo "== cargo build --benches"
cargo build --benches --offline

echo "== cargo test -q"
cargo test -q --workspace --offline

echo "== cargo test --test dataplane_determinism"
cargo test -q --test dataplane_determinism --offline

echo "check.sh: all gates passed"

#!/usr/bin/env bash
# Repo-wide lint + test gate. Run before every push; CI runs the same.
#
#   fmt     — formatting matches rustfmt.toml
#   clippy  — all targets, warnings are errors
#   benches — every benchmark harness compiles (they are exercised
#             manually, so an ordinary test run never builds them)
#   test    — the full workspace suite, offline
#   determ  — the dataplane determinism property explicitly, so a failure
#             is named in CI output rather than buried in the suite
#   telem   — the telemetry substrate, the ring drop/delivery/occupancy
#             balance, and the PIT expiry fixes by name, plus a grep gate:
#             the DropReason taxonomy lives in dip-telemetry only
#   ctrl    — the control-plane reconvergence scenario by name, plus a
#             grep gate: RouteSnapshot values are built only by the
#             control plane (and tests/benches) — dataplane code must
#             never assemble its own routing state
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets --offline -- -D warnings

echo "== cargo build --benches"
cargo build --benches --offline

echo "== cargo test -q"
cargo test -q --workspace --offline

echo "== cargo test --test dataplane_determinism"
cargo test -q --test dataplane_determinism --offline

echo "== telemetry + accounting gates (named)"
cargo test -q -p dip-telemetry --offline
cargo test -q -p dip-dataplane --offline \
    ring::tests::drops_plus_deliveries_plus_occupancy_balance
cargo test -q -p dip-dataplane --offline \
    ring::tests::cross_thread_balance_under_drop_pressure
cargo test -q -p dip-dataplane --offline \
    runtime::tests::registry_accounts_for_every_submitted_packet
cargo test -q -p dip-tables --offline \
    pit::tests::expired_entries_do_not_block_inserts
cargo test -q -p dip-tables --offline \
    pit::tests::consume_evicts_expired_entry_and_counts_it
cargo test -q --test adversarial_inputs --offline

echo "== control-plane reconvergence gate (named)"
cargo test -q --test controlplane --offline
cargo test -q -p dip-controlplane --offline

echo "== RouteSnapshot construction is pinned to the control plane"
# Routing state is compiled by dip-controlplane and swapped in whole;
# nothing else may assemble a RouteSnapshot. Permitted: the definition
# site (snapshot.rs), the epoch-cell plumbing and its tests (runtime.rs),
# and test/bench/example code.
if grep -rn 'RouteSnapshot::default()\|RouteSnapshot::capture\|RouteSnapshot {' \
        crates src --include='*.rs' \
    | grep -v '^crates/controlplane/' \
    | grep -v '^crates/dataplane/src/snapshot\.rs:' \
    | grep -v '^crates/dataplane/src/runtime\.rs:' \
    | grep -v '^crates/bench/'; then
    echo "error: RouteSnapshot constructed outside the control plane" >&2
    exit 1
fi

echo "== drop taxonomy lives only in dip-telemetry"
if grep -rn "enum DropReason" crates src --include='*.rs' | grep -v '^crates/telemetry/'; then
    echo "error: private DropReason definition outside crates/telemetry" >&2
    exit 1
fi

echo "check.sh: all gates passed"

#!/usr/bin/env bash
# Repo-wide lint + test gate. Run before every push; CI runs the same.
#
#   fmt     — formatting matches rustfmt.toml
#   clippy  — all targets, warnings are errors
#   benches — every benchmark harness compiles (they are exercised
#             manually, so an ordinary test run never builds them)
#   test    — the full workspace suite, offline
#   determ  — the dataplane determinism property explicitly, so a failure
#             is named in CI output rather than buried in the suite
#   telem   — the telemetry substrate, the ring drop/delivery/occupancy
#             balance, and the PIT expiry fixes by name, plus a grep gate:
#             the DropReason taxonomy lives in dip-telemetry only
#   ctrl    — the control-plane reconvergence scenario by name, plus a
#             grep gate: RouteSnapshot values are built only by the
#             control plane (and tests/benches) — dataplane code must
#             never assemble its own routing state
#   load    — the workload harness: build dipload, run the workload
#             determinism suite by name, MST smoke across every protocol
#             writing BENCH_workload.json, plus a grep gate: quantile
#             math lives in dip-telemetry only
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets --offline -- -D warnings

echo "== cargo build --benches"
cargo build --benches --offline

echo "== cargo test -q"
cargo test -q --workspace --offline

echo "== cargo test --test dataplane_determinism"
cargo test -q --test dataplane_determinism --offline

echo "== telemetry + accounting gates (named)"
cargo test -q -p dip-telemetry --offline
cargo test -q -p dip-dataplane --offline \
    ring::tests::drops_plus_deliveries_plus_occupancy_balance
cargo test -q -p dip-dataplane --offline \
    ring::tests::cross_thread_balance_under_drop_pressure
cargo test -q -p dip-dataplane --offline \
    runtime::tests::registry_accounts_for_every_submitted_packet
cargo test -q -p dip-tables --offline \
    pit::tests::expired_entries_do_not_block_inserts
cargo test -q -p dip-tables --offline \
    pit::tests::consume_evicts_expired_entry_and_counts_it
cargo test -q --test adversarial_inputs --offline

echo "== control-plane reconvergence gate (named)"
cargo test -q --test controlplane --offline
cargo test -q -p dip-controlplane --offline

echo "== RouteSnapshot construction is pinned to the control plane"
# Routing state is compiled by dip-controlplane and swapped in whole;
# nothing else may assemble a RouteSnapshot. Permitted: the definition
# site (snapshot.rs), the epoch-cell plumbing and its tests (runtime.rs),
# and test/bench/example code.
if grep -rn 'RouteSnapshot::default()\|RouteSnapshot::capture\|RouteSnapshot {' \
        crates src --include='*.rs' \
    | grep -v '^crates/controlplane/' \
    | grep -v '^crates/dataplane/src/snapshot\.rs:' \
    | grep -v '^crates/dataplane/src/runtime\.rs:' \
    | grep -v '^crates/bench/'; then
    echo "error: RouteSnapshot constructed outside the control plane" >&2
    exit 1
fi

echo "== workload determinism gate (named)"
cargo test -q --test workload_determinism --offline
cargo test -q -p dip-workload --offline

echo "== dipload MST smoke (all protocols -> BENCH_workload.json)"
cargo build -q --release --bin dipload --offline
# Small trials keep the smoke around two seconds while still bisecting
# to a real knee for every protocol; the JSON lines are the repo's bench
# trajectory, appended-to by CI and diffed by humans.
./target/release/dipload --protocol all --seed 7 --packets 512 --queue 64 --iters 10 \
    > BENCH_workload.json
lines=$(wc -l < BENCH_workload.json)
if [ "$lines" -ne 6 ]; then
    echo "error: expected 6 MST lines (5 protocols + ndn_opt), got $lines" >&2
    exit 1
fi
if grep -v '"mst_pps":' BENCH_workload.json; then
    echo "error: BENCH_workload.json line missing mst_pps" >&2
    exit 1
fi

echo "== quantile math lives only in dip-telemetry"
# Latency quantiles are estimated once, in the histogram (linear
# interpolation inside log-spaced buckets); drivers and benches must read
# them, not re-derive them.
if grep -rn 'fn quantile' crates src --include='*.rs' | grep -v '^crates/telemetry/'; then
    echo "error: quantile implementation outside crates/telemetry" >&2
    exit 1
fi

echo "== drop taxonomy lives only in dip-telemetry"
if grep -rn "enum DropReason" crates src --include='*.rs' | grep -v '^crates/telemetry/'; then
    echo "error: private DropReason definition outside crates/telemetry" >&2
    exit 1
fi

echo "check.sh: all gates passed"

#!/usr/bin/env bash
# Repo-wide lint + test gate. Run before every push; CI runs the same.
#
#   fmt     — formatting matches rustfmt.toml
#   clippy  — all targets, warnings are errors
#   benches — every benchmark harness compiles (they are exercised
#             manually, so an ordinary test run never builds them)
#   test    — the full workspace suite, offline
#   determ  — the dataplane determinism property explicitly, so a failure
#             is named in CI output rather than buried in the suite
#   telem   — the telemetry substrate, the ring drop/delivery/occupancy
#             balance, and the PIT expiry fixes by name
#   model   — the exhaustive-interleaving model check of the SPSC ring
#             and the epoch-swap cell (every 2-thread schedule up to the
#             bounded op count)
#   ctrl    — the control-plane reconvergence scenario by name
#   equiv   — the dipopt equivalence gate: optimized execution must be
#             byte-identical to interpreted execution for all six
#             protocol programs, and the must-not-optimize corpus must
#             stay unoptimized
#   lint    — diplint, the repo-invariant linter (replaces the old grep
#             gates): RouteSnapshot construction pinned to the control
#             plane, quantile math and the DropReason taxonomy pinned to
#             dip-telemetry, unsafe code pinned to ring.rs with SAFETY
#             justifications
#   load    — the workload harness: build dipload, run the workload
#             determinism suite by name, MST smoke across every protocol
#             writing BENCH_workload.json
#   routes  — the compiled forwarding state: the dip-routes suite, the
#             delta-equivalence property test by name, the 1M-route
#             oracle in release (debug would take minutes), the churn
#             identity smoke by name, and a threaded dipload-under-churn
#             smoke asserting honest workers/churn JSON
#   stat    — dipstat smoke: per-program dipopt facts for all six
#             programs, including the XIA hot-path rewrite
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets --offline -- -D warnings

echo "== cargo build --benches"
cargo build --benches --offline

echo "== cargo test -q"
cargo test -q --workspace --offline

echo "== cargo test --test dataplane_determinism"
cargo test -q --test dataplane_determinism --offline

echo "== telemetry + accounting gates (named)"
cargo test -q -p dip-telemetry --offline
cargo test -q -p dip-dataplane --offline \
    ring::tests::drops_plus_deliveries_plus_occupancy_balance
cargo test -q -p dip-dataplane --offline \
    ring::tests::cross_thread_balance_under_drop_pressure
cargo test -q -p dip-dataplane --offline \
    runtime::tests::registry_accounts_for_every_submitted_packet
cargo test -q -p dip-tables --offline \
    pit::tests::expired_entries_do_not_block_inserts
cargo test -q -p dip-tables --offline \
    pit::tests::consume_evicts_expired_entry_and_counts_it
cargo test -q --test adversarial_inputs --offline

echo "== concurrency model check gate (named)"
cargo test -q -p dip-dataplane --test concurrency_model --offline

echo "== control-plane reconvergence gate (named)"
cargo test -q --test controlplane --offline
cargo test -q -p dip-controlplane --offline

echo "== dipopt equivalence gate (named)"
cargo test -q --test equivalence --offline

echo "== diplint (repo invariants)"
# Replaces the old grep gates (RouteSnapshot pinned to the control
# plane, quantile/DropReason pinned to dip-telemetry) and adds the
# unsafe-containment rule. The linter's own contract is pinned by
# tests/diplint.rs, which seeds each violation and expects failure.
cargo build -q --release --bin diplint --offline
./target/release/diplint
cargo test -q --test diplint --offline

echo "== workload determinism gate (named)"
cargo test -q --test workload_determinism --offline
cargo test -q -p dip-workload --offline

echo "== dipload MST smoke (all protocols -> BENCH_workload.json)"
cargo build -q --release --bin dipload --offline
# Small trials keep the smoke around two seconds while still bisecting
# to a real knee for every protocol; the JSON lines are the repo's bench
# trajectory, appended-to by CI and diffed by humans.
./target/release/dipload --protocol all --seed 7 --packets 512 --queue 64 --iters 10 \
    > BENCH_workload.json
lines=$(wc -l < BENCH_workload.json)
if [ "$lines" -ne 6 ]; then
    echo "error: expected 6 MST lines (5 protocols + ndn_opt), got $lines" >&2
    exit 1
fi
if grep -v '"mst_pps":' BENCH_workload.json; then
    echo "error: BENCH_workload.json line missing mst_pps" >&2
    exit 1
fi

echo "== routes: delta-equivalence gate (named)"
cargo test -q -p dip-routes --offline
cargo test -q -p dip-routes --test delta_equivalence --offline \
    snapshot_plus_delta_equals_rebuilt_snapshot

echo "== routes: 1M-route oracle (release)"
cargo test -q -p dip-routes --release --offline --test million_oracle \
    million_route_oracle_v4_v6

echo "== routes: churn smoke (named, debug)"
# The accounting identity must hold while a storm swaps epochs
# mid-trace, on both engines, twice with identical results.
cargo test -q -p dip-workload --offline \
    openloop::tests::churn_storm_preserves_identity_and_determinism

echo "== routes: threaded dipload under churn"
./target/release/dipload --protocol ipv4 --engine dataplane --workers 4 \
    --churn 100000 --packets 512 --queue 64 --iters 8 > /tmp/dipload_churn.json
for field in '"workers":4' '"churn_ups":100000' '"churn_deltas":' '"churn_epoch_swaps":'; do
    if ! grep -q "$field" /tmp/dipload_churn.json; then
        echo "error: dipload churn line missing $field" >&2
        exit 1
    fi
done

echo "== routes: BENCH_churn.json fields"
# The committed bench file is regenerated by `cargo bench -p dip-bench
# --bench churn` (which enforces the <=25% MST-degradation bound);
# here we pin that the committed lines carry the contract's fields.
for field in '"mode":"quiescent"' '"mode":"storm"' '"degradation_pct":' \
             '"churn_deltas":' '"mst_pps":'; do
    if ! grep -q "$field" BENCH_churn.json; then
        echo "error: BENCH_churn.json missing $field" >&2
        exit 1
    fi
done

echo "== dipstat smoke (per-program dipopt facts)"
cargo build -q --release --bin dipstat --offline
./target/release/dipstat > /tmp/dipstat_smoke.json
lines=$(wc -l < /tmp/dipstat_smoke.json)
if [ "$lines" -ne 6 ]; then
    echo "error: expected 6 dipstat lines, got $lines" >&2
    exit 1
fi
# The XIA hot-path fix must be present: the standalone DAG parse is
# eliminated into the adjacent F_intent walk.
if ! grep '"program":"xia"' /tmp/dipstat_smoke.json \
        | grep -q 'eliminate_redundant_parse'; then
    echo "error: dipstat lost the XIA dag-parse elimination" >&2
    exit 1
fi

echo "check.sh: all gates passed"

#!/usr/bin/env bash
# Repo-wide lint + test gate. Run before every push; CI runs the same.
#
#   fmt    — formatting matches rustfmt.toml
#   clippy — all targets, warnings are errors
#   test   — the full workspace suite, offline
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets --offline -- -D warnings

echo "== cargo test -q"
cargo test -q --workspace --offline

echo "check.sh: all gates passed"

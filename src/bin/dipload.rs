//! `dipload` — deterministic load generation and MST search, as a command.
//!
//! For each requested protocol (or `all` six: the five paper protocols
//! plus NDN+OPT) it runs the open-loop max-sustainable-throughput search
//! and prints one `dip_bench` JSON line:
//!
//! ```text
//! {"bench":"workload_mst","protocol":"ndn","seed":7,...,
//!  "offered_pps":...,"mst_pps":...,"p50_ns":...,"p99_ns":...,
//!  "drop_frac":...,"content_hash":"..."}
//! ```
//!
//! Everything is seeded: re-running with the same arguments reproduces
//! the identical MST, trial sequence, and trace hashes.
//!
//! ```text
//! usage: dipload [--protocol all|ipv4,ndn,...] [--seed N] [--engine router|dataplane]
//!                [--workers N] [--batch N] [--packets N] [--iters N]
//!                [--lo PPS] [--hi PPS] [--queue N] [--p99-ns N] [--drop-frac F]
//!                [--arrival uniform|poisson|onoff] [--churn UPS]
//! ```
//!
//! `--churn UPS` runs every trial under a seeded route-update storm of
//! `UPS` updates per virtual second (see `dip_workload::churn`); the
//! emitted line then carries `churn_ups`, `churn_deltas`, and
//! `churn_epoch_swaps` from the MST trial.

use dip::workload::{
    find_mst, ArrivalModel, ChurnSpec, EngineKind, Mix, MstConfig, OpenLoopConfig, TrafficClass,
    WorkloadSpec,
};
use dip_bench::JsonLine;

struct Args {
    protocols: Vec<TrafficClass>,
    seed: u64,
    engine: EngineKind,
    packets: usize,
    iters: usize,
    lo: u64,
    hi: u64,
    queue: usize,
    p99_ns: u64,
    drop_frac: f64,
    arrival: ArrivalModel,
    churn_ups: Option<u64>,
}

fn usage(err: &str) -> ! {
    eprintln!("dipload: {err}");
    eprintln!(
        "usage: dipload [--protocol all|ipv4,ipv6,ndn,opt,xia,ndn_opt] [--seed N]\n\
         \u{20}              [--engine router|dataplane] [--workers N] [--batch N]\n\
         \u{20}              [--packets N] [--iters N] [--lo PPS] [--hi PPS] [--queue N]\n\
         \u{20}              [--p99-ns N] [--drop-frac F] [--arrival uniform|poisson|onoff]\n\
         \u{20}              [--churn UPS]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        protocols: TrafficClass::ALL.to_vec(),
        seed: 7,
        engine: EngineKind::Router,
        packets: 2048,
        iters: 18,
        lo: 1_000,
        hi: 1_000_000_000,
        queue: 1024,
        p99_ns: 1_000_000,
        drop_frac: 0.001,
        arrival: ArrivalModel::Poisson,
        churn_ups: None,
    };
    let (mut workers, mut batch) = (2usize, 32usize);
    let mut engine_name = String::from("router");
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let mut value = || -> String {
            i += 1;
            argv.get(i).cloned().unwrap_or_else(|| usage(&format!("{flag} needs a value")))
        };
        match flag {
            "--protocol" => {
                let v = value();
                if v != "all" {
                    args.protocols = v
                        .split(',')
                        .map(|s| {
                            TrafficClass::parse(s)
                                .unwrap_or_else(|| usage(&format!("unknown protocol {s:?}")))
                        })
                        .collect();
                }
            }
            "--seed" => args.seed = value().parse().unwrap_or_else(|_| usage("bad --seed")),
            "--engine" => engine_name = value(),
            "--workers" => workers = value().parse().unwrap_or_else(|_| usage("bad --workers")),
            "--batch" => batch = value().parse().unwrap_or_else(|_| usage("bad --batch")),
            "--packets" => {
                args.packets = value().parse().unwrap_or_else(|_| usage("bad --packets"))
            }
            "--iters" => args.iters = value().parse().unwrap_or_else(|_| usage("bad --iters")),
            "--lo" => args.lo = value().parse().unwrap_or_else(|_| usage("bad --lo")),
            "--hi" => args.hi = value().parse().unwrap_or_else(|_| usage("bad --hi")),
            "--queue" => args.queue = value().parse().unwrap_or_else(|_| usage("bad --queue")),
            "--p99-ns" => args.p99_ns = value().parse().unwrap_or_else(|_| usage("bad --p99-ns")),
            "--drop-frac" => {
                args.drop_frac = value().parse().unwrap_or_else(|_| usage("bad --drop-frac"))
            }
            "--churn" => {
                args.churn_ups = Some(value().parse().unwrap_or_else(|_| usage("bad --churn")))
            }
            "--arrival" => {
                args.arrival = match value().as_str() {
                    "uniform" => ArrivalModel::Uniform,
                    "poisson" => ArrivalModel::Poisson,
                    "onoff" => ArrivalModel::OnOff { mean_on_ns: 100_000, mean_off_ns: 300_000 },
                    other => usage(&format!("unknown arrival model {other:?}")),
                }
            }
            other => usage(&format!("unknown flag {other:?}")),
        }
        i += 1;
    }
    args.engine = match engine_name.as_str() {
        "router" => EngineKind::Router,
        "dataplane" => EngineKind::Dataplane { workers, batch_size: batch },
        other => usage(&format!("unknown engine {other:?}")),
    };
    args
}

fn main() {
    let args = parse_args();
    let cfg = MstConfig {
        slo: dip::workload::Slo { p99_ns: args.p99_ns, max_drop_frac: args.drop_frac },
        open_loop: OpenLoopConfig {
            engine: args.engine,
            queue_capacity: args.queue,
            churn: args.churn_ups.map(|ups| ChurnSpec { rate_ups: ups, ..Default::default() }),
            ..Default::default()
        },
        packets_per_trial: args.packets,
        lo_pps: args.lo,
        hi_pps: args.hi,
        max_iters: args.iters,
    };
    let (engine_label, workers) = match args.engine {
        EngineKind::Router => ("router", 1),
        EngineKind::Dataplane { workers, .. } => ("dataplane", workers),
    };
    for class in &args.protocols {
        let spec = WorkloadSpec {
            seed: args.seed,
            mix: Mix::single(*class),
            arrival: args.arrival,
            ..Default::default()
        };
        let result = find_mst(&spec, &cfg);
        let mut line = JsonLine::new("workload_mst")
            .str("protocol", class.label())
            .u64("seed", args.seed)
            .str("engine", engine_label)
            .u64("workers", workers as u64)
            .u64("trials", result.trials.len() as u64)
            .u64("churn_ups", args.churn_ups.unwrap_or(0))
            .u64("mst_pps", result.mst_pps);
        match result.mst_trial() {
            Some(t) => {
                line = line
                    .u64("offered_pps", t.offered_pps)
                    .u64("p50_ns", t.p50_ns)
                    .u64("p99_ns", t.p99_ns)
                    .f64p("drop_frac", t.drop_frac, 6)
                    .u64("queue_full", t.queue_full)
                    .u64("churn_deltas", t.churn_deltas)
                    .u64("churn_epoch_swaps", t.churn_epoch_swaps)
                    .str("trace_hash", &format!("{:016x}", t.trace_hash));
            }
            None => {
                line = line
                    .u64("offered_pps", 0)
                    .u64("p50_ns", 0)
                    .u64("p99_ns", 0)
                    .f64p("drop_frac", 1.0, 6)
                    .u64("queue_full", 0)
                    .str("trace_hash", "none");
            }
        }
        line.str("content_hash", &format!("{:016x}", result.content_hash)).emit();
    }
}

//! `dipload` — deterministic load generation and MST search, as a command.
//!
//! For each requested protocol (or `all` six: the five paper protocols
//! plus NDN+OPT) it runs the open-loop max-sustainable-throughput search
//! and prints one `dip_bench` JSON line:
//!
//! ```text
//! {"bench":"workload_mst","protocol":"ndn","seed":7,...,
//!  "offered_pps":...,"mst_pps":...,"p50_ns":...,"p99_ns":...,
//!  "drop_frac":...,"content_hash":"..."}
//! ```
//!
//! Everything on the modeled engines is seeded: re-running with the same
//! arguments reproduces the identical MST, trial sequence, and trace
//! hashes. The `wallclock` engine instead *measures* — real-time paced
//! injection into the threaded dataplane, MST bisected on the measured
//! drop fraction, capacity read against per-thread CPU time — so its
//! numbers are host-dependent by design; every emitted line carries a
//! `measurement` field (`"modeled"` or `"wallclock"`) saying which regime
//! produced it.
//!
//! ```text
//! usage: dipload [--protocol all|ipv4,ndn,...] [--seed N]
//!                [--engine router|dataplane|wallclock]
//!                [--workers N] [--batch N] [--packets N] [--iters N]
//!                [--lo PPS] [--hi PPS] [--queue N] [--p99-ns N] [--drop-frac F]
//!                [--warmup-ms N] [--measure-ms N]
//!                [--arrival uniform|poisson|onoff] [--churn UPS]
//! ```
//!
//! `--churn UPS` runs every trial under a seeded route-update storm of
//! `UPS` updates per virtual second (see `dip_workload::churn`); the
//! emitted line then carries `churn_ups`, `churn_deltas`, and
//! `churn_epoch_swaps` from the MST trial.
//!
//! `--scenario SPEC` switches to the scenario engine instead: SPEC is the
//! compact `family:key=value,...` form from `dip_scenario` (e.g.
//! `partition:k=4,window=400000,requests=24,seed=7`), and the output is
//! one self-contained JSON report with per-phase, per-protocol delivery
//! fractions, drop taxonomies, PIT/CS occupancy, and reconvergence
//! times. Fully deterministic: same SPEC, same bytes.

use dip::workload::{
    find_mst, find_mst_wallclock, host_cpus, measure_capacity, ArrivalModel, ChurnSpec, EngineKind,
    Mix, MstConfig, OpenLoopConfig, TrafficClass, WallClockConfig, WallMstConfig, WorkloadSpec,
};
use dip_bench::JsonLine;

/// The modeled engines plus the measuring one.
enum CliEngine {
    Modeled(EngineKind),
    Wallclock { workers: usize, batch_size: usize },
}

struct Args {
    protocols: Vec<TrafficClass>,
    seed: u64,
    engine: CliEngine,
    packets: usize,
    iters: usize,
    lo: u64,
    hi: u64,
    queue: usize,
    p99_ns: u64,
    drop_frac: f64,
    warmup_ms: u64,
    measure_ms: u64,
    arrival: ArrivalModel,
    churn_ups: Option<u64>,
    scenario: Option<String>,
}

fn usage(err: &str) -> ! {
    eprintln!("dipload: {err}");
    eprintln!(
        "usage: dipload [--protocol all|ipv4,ipv6,ndn,opt,xia,ndn_opt] [--seed N]\n\
         \u{20}              [--engine router|dataplane|wallclock] [--workers N] [--batch N]\n\
         \u{20}              [--packets N] [--iters N] [--lo PPS] [--hi PPS] [--queue N]\n\
         \u{20}              [--p99-ns N] [--drop-frac F] [--warmup-ms N] [--measure-ms N]\n\
         \u{20}              [--arrival uniform|poisson|onoff] [--churn UPS]\n\
         \u{20}              [--scenario family:key=value,...]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        protocols: TrafficClass::ALL.to_vec(),
        seed: 7,
        engine: CliEngine::Modeled(EngineKind::Router),
        packets: 2048,
        iters: 18,
        lo: 1_000,
        hi: 1_000_000_000,
        queue: 1024,
        p99_ns: 1_000_000,
        drop_frac: 0.001,
        warmup_ms: 50,
        measure_ms: 200,
        arrival: ArrivalModel::Poisson,
        churn_ups: None,
        scenario: None,
    };
    let (mut workers, mut batch) = (2usize, 32usize);
    let mut engine_name = String::from("router");
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let mut value = || -> String {
            i += 1;
            argv.get(i).cloned().unwrap_or_else(|| usage(&format!("{flag} needs a value")))
        };
        match flag {
            "--protocol" => {
                let v = value();
                if v != "all" {
                    args.protocols = v
                        .split(',')
                        .map(|s| {
                            TrafficClass::parse(s)
                                .unwrap_or_else(|| usage(&format!("unknown protocol {s:?}")))
                        })
                        .collect();
                }
            }
            "--seed" => args.seed = value().parse().unwrap_or_else(|_| usage("bad --seed")),
            "--engine" => engine_name = value(),
            "--workers" => workers = value().parse().unwrap_or_else(|_| usage("bad --workers")),
            "--batch" => batch = value().parse().unwrap_or_else(|_| usage("bad --batch")),
            "--packets" => {
                args.packets = value().parse().unwrap_or_else(|_| usage("bad --packets"))
            }
            "--iters" => args.iters = value().parse().unwrap_or_else(|_| usage("bad --iters")),
            "--lo" => args.lo = value().parse().unwrap_or_else(|_| usage("bad --lo")),
            "--hi" => args.hi = value().parse().unwrap_or_else(|_| usage("bad --hi")),
            "--queue" => args.queue = value().parse().unwrap_or_else(|_| usage("bad --queue")),
            "--p99-ns" => args.p99_ns = value().parse().unwrap_or_else(|_| usage("bad --p99-ns")),
            "--drop-frac" => {
                args.drop_frac = value().parse().unwrap_or_else(|_| usage("bad --drop-frac"))
            }
            "--warmup-ms" => {
                args.warmup_ms = value().parse().unwrap_or_else(|_| usage("bad --warmup-ms"))
            }
            "--measure-ms" => {
                args.measure_ms = value().parse().unwrap_or_else(|_| usage("bad --measure-ms"))
            }
            "--churn" => {
                args.churn_ups = Some(value().parse().unwrap_or_else(|_| usage("bad --churn")))
            }
            "--scenario" => args.scenario = Some(value()),
            "--arrival" => {
                args.arrival = match value().as_str() {
                    "uniform" => ArrivalModel::Uniform,
                    "poisson" => ArrivalModel::Poisson,
                    "onoff" => ArrivalModel::OnOff { mean_on_ns: 100_000, mean_off_ns: 300_000 },
                    other => usage(&format!("unknown arrival model {other:?}")),
                }
            }
            other => usage(&format!("unknown flag {other:?}")),
        }
        i += 1;
    }
    args.engine = match engine_name.as_str() {
        "router" => CliEngine::Modeled(EngineKind::Router),
        "dataplane" => CliEngine::Modeled(EngineKind::Dataplane { workers, batch_size: batch }),
        "wallclock" => CliEngine::Wallclock { workers, batch_size: batch },
        other => usage(&format!("unknown engine {other:?}")),
    };
    args
}

fn main() {
    let args = parse_args();
    if let Some(spec) = &args.scenario {
        return run_scenario_cli(spec);
    }
    match args.engine {
        CliEngine::Modeled(engine) => run_modeled(&args, engine),
        CliEngine::Wallclock { workers, batch_size } => run_wallclock(&args, workers, batch_size),
    }
}

/// The scenario engine: generated topology, real control plane, scripted
/// disruptions, one deterministic JSON report on stdout.
fn run_scenario_cli(spec: &str) {
    let spec = dip::scenario::ScenarioSpec::parse(spec).unwrap_or_else(|e| usage(&e));
    println!("{}", dip::scenario::run_scenario(&spec).to_json());
}

/// The original virtual-time path: deterministic queue model over the
/// Tofino service costs, emitted with `"measurement":"modeled"`.
fn run_modeled(args: &Args, engine: EngineKind) {
    let cfg = MstConfig {
        slo: dip::workload::Slo { p99_ns: args.p99_ns, max_drop_frac: args.drop_frac },
        open_loop: OpenLoopConfig {
            engine,
            queue_capacity: args.queue,
            churn: args.churn_ups.map(|ups| ChurnSpec { rate_ups: ups, ..Default::default() }),
            ..Default::default()
        },
        packets_per_trial: args.packets,
        lo_pps: args.lo,
        hi_pps: args.hi,
        max_iters: args.iters,
    };
    let (engine_label, workers) = match engine {
        EngineKind::Router => ("router", 1),
        EngineKind::Dataplane { workers, .. } => ("dataplane", workers),
    };
    for class in &args.protocols {
        let spec = WorkloadSpec {
            seed: args.seed,
            mix: Mix::single(*class),
            arrival: args.arrival,
            ..Default::default()
        };
        let result = find_mst(&spec, &cfg);
        let mut line = JsonLine::new("workload_mst")
            .str("protocol", class.label())
            .u64("seed", args.seed)
            .str("engine", engine_label)
            .str("measurement", "modeled")
            .u64("workers", workers as u64)
            .u64("trials", result.trials.len() as u64)
            .u64("churn_ups", args.churn_ups.unwrap_or(0))
            .u64("mst_pps", result.mst_pps);
        match result.mst_trial() {
            Some(t) => {
                line = line
                    .u64("offered_pps", t.offered_pps)
                    .u64("p50_ns", t.p50_ns)
                    .u64("p99_ns", t.p99_ns)
                    .f64p("drop_frac", t.drop_frac, 6)
                    .u64("queue_full", t.queue_full)
                    .u64("churn_deltas", t.churn_deltas)
                    .u64("churn_epoch_swaps", t.churn_epoch_swaps)
                    .str("trace_hash", &format!("{:016x}", t.trace_hash));
            }
            None => {
                line = line
                    .u64("offered_pps", 0)
                    .u64("p50_ns", 0)
                    .u64("p99_ns", 0)
                    .f64p("drop_frac", 1.0, 6)
                    .u64("queue_full", 0)
                    .str("trace_hash", "none");
            }
        }
        line.str("content_hash", &format!("{:016x}", result.content_hash)).emit();
    }
}

/// The measuring path: real-time paced injection into the threaded
/// dataplane. Per protocol it runs a saturation probe for `capacity_pps`
/// and a wall MST bisection bracketed around the probe's wall rate; the
/// committed `mst_pps` is whichever statistic the host can vouch for
/// (`authority` says which — see DESIGN.md §15). Host-dependent by
/// design, so the line says `"measurement":"wallclock"` and carries
/// `host_cpus` for re-judging on other hardware.
fn run_wallclock(args: &Args, workers: usize, batch_size: usize) {
    let wallclock = WallClockConfig {
        workers,
        batch_size,
        ring_capacity: args.queue,
        warmup: std::time::Duration::from_millis(args.warmup_ms),
        measure: std::time::Duration::from_millis(args.measure_ms),
        churn: args.churn_ups.map(|ups| ChurnSpec { rate_ups: ups, ..Default::default() }),
        ..Default::default()
    };
    for class in &args.protocols {
        let spec = WorkloadSpec {
            seed: args.seed,
            mix: Mix::single(*class),
            arrival: args.arrival,
            ..Default::default()
        };
        let cap = measure_capacity(&spec, &wallclock);
        let lo_pps = ((cap.wall_pps / 16.0) as u64).max(args.lo);
        let hi_pps = ((cap.wall_pps * 2.5) as u64).max(lo_pps + 1).min(args.hi.max(lo_pps + 1));
        let mst = find_mst_wallclock(
            &spec,
            &WallMstConfig {
                wallclock: wallclock.clone(),
                max_drop_frac: args.drop_frac,
                lo_pps,
                hi_pps,
                max_iters: args.iters,
            },
        );
        let mst_trial = mst.trials.iter().rfind(|t| t.offered_pps == mst.mst_pps);
        let authority = cap.authority();
        let mst_pps = if authority == "capacity" { cap.capacity_pps as u64 } else { mst.mst_pps };
        JsonLine::new("workload_mst")
            .str("protocol", class.label())
            .u64("seed", args.seed)
            .str("engine", "wallclock")
            .str("measurement", "wallclock")
            .u64("workers", workers as u64)
            .u64("trials", mst.trials.len() as u64)
            .u64("churn_ups", args.churn_ups.unwrap_or(0))
            .u64("mst_pps", mst_pps)
            .str("authority", authority)
            .f64p("capacity_pps", cap.capacity_pps, 0)
            .f64p("wall_pps", cap.wall_pps, 0)
            .u64("wall_mst_pps", mst.mst_pps)
            .f64p("drop_frac", mst_trial.map_or(1.0, |t| t.drop_frac()), 6)
            .u64("queue_full", mst_trial.map_or(0, |t| t.queue_full))
            .u64("churn_deltas", mst_trial.map_or(0, |t| t.churn_deltas))
            .u64("churn_epoch_swaps", mst_trial.map_or(0, |t| t.churn_epoch_swaps))
            .u64("host_cpus", host_cpus() as u64)
            .str("oversubscribed", if cap.oversubscribed() { "true" } else { "false" })
            .u64("pool_misses", cap.pool_misses)
            .emit();
    }
}

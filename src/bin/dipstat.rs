//! `dipstat` — per-program dipopt facts and rewrites, as JSON lines.
//!
//! Runs the abstract-interpretation optimizer (`dip_verify::opt`) over the
//! six protocol programs the repo ships (DIP-32, DIP-128, NDN, OPT, XIA,
//! NDN+OPT) — or over any subset — and prints one JSON object per program:
//! the per-hop bit-span footprints and folded operands, every rewrite the
//! optimizer proved safe, and every opportunity it declined with the
//! reason. This is the human-readable face of the `ProgramFacts` artifact
//! the dataplane consumes.
//!
//! ```text
//! usage: dipstat [--protocol NAME|all] [--hops]
//!
//!   --protocol NAME   ipv4 | ipv6 | ndn | opt | xia | ndn_opt | all
//!                     (default: all)
//!   --hops            include the per-hop facts array (larger output)
//! ```

use dip::prelude::*;
use dip::verify::{analyze, AbstractVal, Bail, BailReason, ProgramFacts, Rewrite};
use dip_fnops::OpCost;
use dip_wire::ipv4::Ipv4Addr;
use dip_wire::ipv6::Ipv6Addr;

fn programs() -> Vec<(&'static str, DipRepr)> {
    let name = Name::parse("hotnets.org");
    let session = OptSession::establish([0xaa; 16], &[0xbb; 16], &[[1; 16], [2; 16]]);
    let dag = Dag::direct_with_fallback(
        DagNode::sink(XidType::Cid, Xid::derive(b"dipstat-content")),
        Xid::derive(b"dipstat-ad"),
        Xid::derive(b"dipstat-hid"),
    )
    .expect("static dag");
    vec![
        (
            "ipv4",
            dip::protocols::ip::dip32_packet(
                Ipv4Addr::new(10, 0, 0, 2),
                Ipv4Addr::new(10, 0, 0, 1),
                64,
            ),
        ),
        (
            "ipv6",
            dip::protocols::ip::dip128_packet(
                Ipv6Addr::new([0x2001, 0xdb8, 0, 0, 0, 0, 0, 2]),
                Ipv6Addr::new([0x2001, 0xdb8, 0, 0, 0, 0, 0, 1]),
                64,
            ),
        ),
        ("ndn", dip::protocols::ndn::interest(&name, 64)),
        ("opt", session.packet(b"payload", 7, 64)),
        ("xia", dip::protocols::xia::packet(&dag, 64)),
        ("ndn_opt", dip::protocols::ndn_opt::data(&session, &name, b"content", 7, 64)),
    ]
}

fn key_name(key: FnKey) -> String {
    format!("{key:?}").to_lowercase()
}

fn cost_json(c: OpCost) -> String {
    format!(
        "{{\"stages\":{},\"table_lookups\":{},\"cipher_blocks\":{},\"resubmits\":{}}}",
        c.stages, c.table_lookups, c.cipher_blocks, c.resubmits
    )
}

fn aval_json(v: &AbstractVal) -> String {
    match v {
        AbstractVal::Unknown => "{\"kind\":\"unknown\"}".to_string(),
        AbstractVal::Const(x) => format!("{{\"kind\":\"const\",\"value\":{x}}}"),
        AbstractVal::Interval { lo, hi } => {
            format!("{{\"kind\":\"interval\",\"lo\":{lo},\"hi\":{hi}}}")
        }
    }
}

fn rewrite_json(r: &Rewrite) -> String {
    match r {
        Rewrite::EliminateRedundantParse { parse, into, fused_model } => format!(
            "{{\"rewrite\":\"eliminate_redundant_parse\",\"parse\":{parse},\"into\":{into},\"fused_model\":{}}}",
            cost_json(*fused_model)
        ),
        Rewrite::EliminateDeadKeyWrite { index } => {
            format!("{{\"rewrite\":\"eliminate_dead_key_write\",\"index\":{index}}}")
        }
        Rewrite::FuseAdjacent { first, second } => {
            format!("{{\"rewrite\":\"fuse_adjacent\",\"first\":{first},\"second\":{second}}}")
        }
        Rewrite::HoistKeySchedule { index, hoisted_model } => format!(
            "{{\"rewrite\":\"hoist_key_schedule\",\"index\":{index},\"hoisted_model\":{}}}",
            cost_json(*hoisted_model)
        ),
    }
}

fn bail_json(b: &Bail) -> String {
    let reason = match b.reason {
        BailReason::ParallelProgram => "parallel_program".to_string(),
        BailReason::UninstalledKey(k) => format!("uninstalled_key:{}", key_name(k)),
        BailReason::SpanMismatch => "span_mismatch".to_string(),
        BailReason::NotAdjacent => "not_adjacent".to_string(),
        BailReason::AliasingWrites => "aliasing_writes".to_string(),
        BailReason::OrderDependentWrites => "order_dependent_writes".to_string(),
        BailReason::KeyDependency => "key_dependency".to_string(),
    };
    let hop = |h: Option<usize>| h.map_or("null".to_string(), |i| i.to_string());
    format!("{{\"first\":{},\"second\":{},\"reason\":\"{reason}\"}}", hop(b.first), hop(b.second))
}

fn facts_json(name: &str, facts: &ProgramFacts, with_hops: bool) -> String {
    let rewrites: Vec<String> = facts.rewrites.iter().map(rewrite_json).collect();
    let bails: Vec<String> = facts.bails.iter().map(bail_json).collect();
    let mut line = format!(
        "{{\"program\":\"{name}\",\"hops\":{},\"optimizes\":{},\"ops_eliminated\":{},\"fusions\":{},\"hoists\":{},\"rewrites\":[{}],\"bails\":[{}]",
        facts.hops.len(),
        facts.optimizes(),
        facts.ops_eliminated(),
        facts.fusions(),
        facts.hoists(),
        rewrites.join(","),
        bails.join(","),
    );
    if with_hops {
        let hops: Vec<String> = facts
            .hops
            .iter()
            .map(|h| {
                let write = h.write_bits.map_or("null".to_string(), |(a, b)| format!("[{a},{b}]"));
                format!(
                    "{{\"index\":{},\"key\":\"{}\",\"host\":{},\"installed\":{},\"read_bits\":[{},{}],\"write_bits\":{write},\"reads_key\":{},\"writes_key\":{},\"model\":{},\"field_loc\":{},\"field_len\":{},\"field_value\":{},\"dag_nodes\":{},\"cipher_blocks\":{}}}",
                    h.index,
                    key_name(h.key),
                    h.host,
                    h.installed,
                    h.read_bits.0,
                    h.read_bits.1,
                    h.reads_key,
                    h.writes_key,
                    cost_json(h.model),
                    aval_json(&h.field_loc),
                    aval_json(&h.field_len),
                    aval_json(&h.field_value),
                    aval_json(&h.dag_nodes),
                    aval_json(&h.cipher_blocks),
                )
            })
            .collect();
        line.push_str(&format!(",\"hop_facts\":[{}]", hops.join(",")));
    }
    line.push('}');
    line
}

fn usage() -> ! {
    eprintln!("usage: dipstat [--protocol NAME|all] [--hops]");
    eprintln!("  --protocol NAME   ipv4 | ipv6 | ndn | opt | xia | ndn_opt | all");
    eprintln!("  --hops            include per-hop facts");
    std::process::exit(2);
}

fn main() {
    let mut protocol = "all".to_string();
    let mut with_hops = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().unwrap_or_else(|| usage_missing(name));
        match arg.as_str() {
            "--protocol" => protocol = value("--protocol"),
            "--hops" => with_hops = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    let registry = FnRegistry::standard();
    let mut printed = 0usize;
    for (name, repr) in programs() {
        if protocol != "all" && protocol != name {
            continue;
        }
        let facts = analyze(&FnProgram::from_repr(&repr), &registry);
        println!("{}", facts_json(name, &facts, with_hops));
        printed += 1;
    }
    if printed == 0 {
        eprintln!("dipstat: unknown protocol {protocol:?}");
        usage();
    }
}

fn usage_missing(name: &str) -> ! {
    eprintln!("dipstat: {name} requires a value");
    usage();
}

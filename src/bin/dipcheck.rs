//! `dipcheck` — the static FN-program linter, as a command.
//!
//! Verifies the five paper protocol compositions (DIP-32, DIP-128, NDN,
//! OPT, NDN+OPT) and then self-tests against the seeded corpus of
//! known-invalid programs. Exit status 0 means every protocol linted
//! clean *and* every corpus entry was rejected with its expected
//! diagnostic — the same contract the integration tests pin.
//!
//! ```text
//! usage: dipcheck [--verbose]
//! ```

use dip::prelude::*;
use dip::verify::invalid_corpus;
use dip_wire::ipv4::Ipv4Addr;
use dip_wire::ipv6::Ipv6Addr;

fn paper_protocols() -> Vec<(&'static str, DipRepr)> {
    let name = Name::parse("hotnets.org");
    let session = OptSession::establish([0xaa; 16], &[0xbb; 16], &[[1; 16], [2; 16]]);
    vec![
        (
            "dip-32 (IPv4)",
            dip::protocols::ip::dip32_packet(
                Ipv4Addr::new(10, 0, 0, 2),
                Ipv4Addr::new(10, 0, 0, 1),
                64,
            ),
        ),
        (
            "dip-128 (IPv6)",
            dip::protocols::ip::dip128_packet(
                Ipv6Addr::new([0x2001, 0xdb8, 0, 0, 0, 0, 0, 2]),
                Ipv6Addr::new([0x2001, 0xdb8, 0, 0, 0, 0, 0, 1]),
                64,
            ),
        ),
        ("ndn interest", dip::protocols::ndn::interest(&name, 64)),
        ("opt", session.packet(b"payload", 7, 64)),
        ("ndn+opt data", dip::protocols::ndn_opt::data(&session, &name, b"content", 7, 64)),
    ]
}

fn main() {
    let verbose = std::env::args().any(|a| a == "--verbose" || a == "-v");
    let checker = Checker::new();
    let mut failures = 0u32;

    println!("dipcheck: paper protocol compositions");
    for (label, repr) in paper_protocols() {
        let report = checker.check(&FnProgram::from_repr(&repr));
        if report.is_clean() {
            println!("  ok    {label}");
        } else {
            failures += 1;
            println!("  FAIL  {label}");
            for d in &report.diagnostics {
                println!("        {d}");
            }
        }
    }

    println!("dipcheck: invalid-program corpus");
    for case in invalid_corpus() {
        let report = if case.hop_keys.is_empty() {
            checker.check(&case.program)
        } else {
            let hops: Vec<FnRegistry> =
                case.hop_keys.iter().map(|ks| FnRegistry::with_keys(ks)).collect();
            checker.check_path(&case.program, &hops)
        };
        let rejected = report.has_errors() && report.has_code(case.expect);
        if rejected {
            println!("  ok    {} rejected [{}]", case.name, case.expect.as_str());
            if verbose {
                println!("        ({})", case.description);
                for d in &report.diagnostics {
                    println!("        {d}");
                }
            }
        } else {
            failures += 1;
            let got = if report.is_clean() {
                "accepted".to_string()
            } else {
                format!("wrong diagnostics: {report}")
            };
            println!("  FAIL  {} expected [{}], {got}", case.name, case.expect.as_str());
        }
    }

    if failures == 0 {
        println!("dipcheck: all checks passed");
    } else {
        println!("dipcheck: {failures} check(s) failed");
        std::process::exit(1);
    }
}

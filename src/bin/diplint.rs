//! `diplint` — the repo-invariant linter.
//!
//! Replaces the fragile grep gates `scripts/check.sh` used to carry with a
//! self-contained binary that walks `crates/` and `src/` under `--root`
//! and enforces the architectural invariants the test-suite depends on:
//!
//! 1. **route-snapshot** — `RouteSnapshot` values are constructed only by
//!    the control plane (and its definition/plumbing/bench sites). The
//!    dataplane consumes whole snapshots via epoch swap; it never
//!    assembles routing state.
//! 2. **quantile** — latency-quantile estimation is implemented once, in
//!    `crates/telemetry` (linear interpolation inside log-spaced
//!    buckets); drivers and benches read quantiles, never re-derive them.
//! 3. **drop-taxonomy** — the `DropReason` enum is defined only in
//!    `crates/telemetry`; every other crate imports it, so drop
//!    accounting stays one taxonomy.
//! 4. **unsafe-containment** — `unsafe` code appears only in the Lamport
//!    ring (`crates/dataplane/src/ring.rs`), and every occurrence there
//!    must be justified by a `SAFETY` invariant comment within the eight
//!    preceding lines.
//! 5. **route-delta** — compressed-table construction (`build_from`) and
//!    incremental delta application (`apply_delta`) live only in
//!    `crates/routes`. Everything else goes through `RouteStore`'s
//!    `rebuild`/`commit` API, so there is exactly one implementation of
//!    the copy-on-write table algebra to verify against the oracle.
//! 6. **link-admin** — administrative link state (`link_down`/`link_up`
//!    and their scheduled variants) is touched only by the simulator
//!    that owns it (`crates/sim`) and the scenario crate that scripts
//!    it (`crates/scenario`). Benches and drivers stage outages through
//!    `dip_scenario`'s `sever_link`/`restore_link`/`schedule_outage`
//!    wrappers, so every disruption a measurement reports went through
//!    the one scripted path.
//!
//! Violations print as `path:line: rule: text` and the process exits 1.
//!
//! ```text
//! usage: diplint [--root DIR]
//! ```

use std::fs;
use std::path::{Path, PathBuf};

// The needles are assembled with `concat!` so diplint's own source (which
// lives under `src/` and is therefore scanned) never matches its own
// patterns.
const ROUTE_SNAPSHOT_NEEDLES: [&str; 3] = [
    concat!("RouteSnapshot", "::default()"),
    concat!("RouteSnapshot", "::capture"),
    concat!("RouteSnapshot", " {"),
];
const ROUTE_DELTA_NEEDLES: [&str; 6] = [
    concat!("fn ", "apply_delta"),
    concat!(".", "apply_delta("),
    concat!("::", "apply_delta"),
    concat!("fn ", "build_from"),
    concat!(".", "build_from("),
    concat!("::", "build_from"),
];
const LINK_ADMIN_NEEDLES: [&str; 4] = [
    concat!(".", "link_down("),
    concat!(".", "link_up("),
    concat!(".", "schedule_link_down("),
    concat!(".", "schedule_link_up("),
];
const QUANTILE_NEEDLE: &str = concat!("fn ", "quantile");
const DROP_REASON_NEEDLE: &str = concat!("enum ", "DropReason");
const UNSAFE_TOKEN: &str = concat!("uns", "afe");
const UNSAFE_RULE: &str = concat!("uns", "afe-containment");
/// How many lines above an `unsafe` occurrence may carry its invariant
/// justification (a SAFETY block may cover a couple of adjacent impls).
const SAFETY_WINDOW: usize = 8;

/// One rule violation: file, 1-based line, rule name, offending text.
struct Violation {
    path: PathBuf,
    line: usize,
    rule: &'static str,
    text: String,
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Whether `line` contains `token` as a standalone identifier (not as a
/// fragment of a longer identifier such as a lint name), ignoring
/// everything after a `//` comment marker.
fn has_token(line: &str, token: &str) -> bool {
    let code = line.split("//").next().unwrap_or(line);
    let mut start = 0;
    while let Some(pos) = code[start..].find(token) {
        let at = start + pos;
        let before_ok = code[..at].chars().next_back().is_none_or(|c| !is_ident_char(c));
        let after_ok = code[at + token.len()..].chars().next().is_none_or(|c| !is_ident_char(c));
        if before_ok && after_ok {
            return true;
        }
        start = at + token.len();
    }
    false
}

/// The places allowed to construct `RouteSnapshot` values: the control
/// plane itself, the definition site, the epoch-cell plumbing (and its
/// tests), bench code, and the churn generator (which *is* a synthetic
/// control plane — it publishes tables-only snapshots under test load).
fn route_snapshot_allowed(rel: &str) -> bool {
    rel.starts_with("crates/controlplane/")
        || rel.starts_with("crates/bench/")
        || rel == "crates/dataplane/src/snapshot.rs"
        || rel == "crates/dataplane/src/runtime.rs"
        || rel == "crates/workload/src/churn.rs"
}

fn lint_file(root: &Path, path: &Path, violations: &mut Vec<Violation>) {
    let Ok(content) = fs::read_to_string(path) else {
        return;
    };
    let rel = path
        .strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace(std::path::MAIN_SEPARATOR, "/");
    let lines: Vec<&str> = content.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        let mut report = |rule: &'static str| {
            violations.push(Violation {
                path: path.to_path_buf(),
                line: i + 1,
                rule,
                text: line.trim().to_string(),
            });
        };
        if !route_snapshot_allowed(&rel) && ROUTE_SNAPSHOT_NEEDLES.iter().any(|n| line.contains(n))
        {
            report("route-snapshot");
        }
        if !rel.starts_with("crates/routes/")
            && ROUTE_DELTA_NEEDLES.iter().any(|n| line.contains(n))
        {
            report("route-delta");
        }
        if !rel.starts_with("crates/sim/")
            && !rel.starts_with("crates/scenario/")
            && LINK_ADMIN_NEEDLES.iter().any(|n| line.contains(n))
        {
            report("link-admin");
        }
        if !rel.starts_with("crates/telemetry/") {
            if line.contains(QUANTILE_NEEDLE) {
                report("quantile");
            }
            if line.contains(DROP_REASON_NEEDLE) {
                report("drop-taxonomy");
            }
        }
        if has_token(line, UNSAFE_TOKEN) {
            if rel != "crates/dataplane/src/ring.rs" {
                report(UNSAFE_RULE);
            } else {
                let justified =
                    lines[i.saturating_sub(SAFETY_WINDOW)..=i].iter().any(|l| l.contains("SAFETY"));
                if !justified {
                    report(UNSAFE_RULE);
                }
            }
        }
    }
}

fn walk(root: &Path, dir: &Path, violations: &mut Vec<Violation>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            walk(root, &path, violations);
        } else if path.extension().is_some_and(|e| e == "rs") {
            lint_file(root, &path, violations);
        }
    }
}

fn usage() -> ! {
    eprintln!("usage: diplint [--root DIR]");
    std::process::exit(2);
}

fn main() {
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let mut violations = Vec::new();
    for top in ["crates", "src"] {
        walk(&root, &root.join(top), &mut violations);
    }
    if violations.is_empty() {
        println!("diplint: all invariants hold");
        return;
    }
    for v in &violations {
        println!("{}:{}: {}: {}", v.path.display(), v.line, v.rule, v.text);
    }
    eprintln!("diplint: {} violation(s)", violations.len());
    std::process::exit(1);
}

//! # DIP — Dynamic Internet Protocol
//!
//! A from-scratch Rust reproduction of *DIP: Unifying Network Layer
//! Innovations using Shared L3 Core Functions* (HotNets '22).
//!
//! DIP's idea: instead of a fixed L3 protocol, every packet carries a list
//! of **Field Operations (FNs)** — `(field location, field length,
//! operation key)` triples — and routers execute exactly the operations the
//! packet asks for. Radically different network layers (IP, NDN, OPT, XIA)
//! *decompose* into FNs, and FNs *compose* into new derived protocols
//! (NDN+OPT: secure content delivery).
//!
//! ## Quick start
//!
//! ```
//! use dip::prelude::*;
//!
//! // A router with a name route (the paper's §2.3 walkthrough).
//! let mut router = DipRouter::new(1, [7; 16]);
//! let name = Name::parse("hotnets.org");
//! router.state_mut().name_fib.add_route(&name, NextHop::port(8));
//!
//! // A consumer builds an NDN interest — one FN triple, 16-byte header.
//! let interest = dip::protocols::ndn::interest(&name, 64);
//! assert_eq!(interest.header_len(), 16);
//!
//! // The router runs Algorithm 1: record PIT, match FIB, forward.
//! let mut buf = interest.to_bytes(&[]).unwrap();
//! let (verdict, _) = router.process(&mut buf, /*in_port*/ 3, /*now*/ 0);
//! assert_eq!(verdict, Verdict::Forward(vec![8]));
//! ```
//!
//! ## Crate map
//!
//! | re-export | crate | contents |
//! |---|---|---|
//! | [`wire`] | `dip-wire` | DIP header codec, FN triples, IPv4/IPv6/NDN/OPT/XIA layouts |
//! | [`crypto`] | `dip-crypto` | AES-128, 2EM, CBC-MAC, KDF, MMO hash |
//! | [`tables`] | `dip-tables` | LPM FIBs, PIT, content store, XIA tables |
//! | [`fnops`] | `dip-fnops` | the `FieldOp` trait, registry, the 12 operation modules |
//! | [`core`] | `dip-core` | Algorithm-1 router, host delivery, budgets, border/tunnel/bootstrap |
//! | [`verify`] | `dip-verify` | `dipcheck`: static FN-program verification (structure, registries, data flow, resources) |
//! | [`protocols`] | `dip-protocols` | IP, NDN, OPT, XIA and NDN+OPT realizations |
//! | [`sim`] | `dip-sim` | discrete-event network simulator + Tofino/PISA timing model |
//! | [`dataplane`] | `dip-dataplane` | multi-worker batched software dataplane: flow sharding, SPSC rings, program caches |
//! | [`controlplane`] | `dip-controlplane` | distributed routing: HELLO adjacencies, LSA flooding, Dijkstra SPF, epoch-swap route publication |
//! | [`telemetry`] | `dip-telemetry` | zero-dependency metrics: counters/gauges/histograms, the packet-outcome taxonomy, Prometheus + JSON rendering |
//! | [`workload`] | `dip-workload` | deterministic load generation: Zipf/Pareto/MMPP traffic models, open/closed-loop drivers, SLO + max-sustainable-throughput search |
//! | [`scenario`] | `dip-scenario` | internet-scale scenarios: fat-tree / AS-graph generators, partition + flash-crowd scripts over the real control plane, per-protocol delivery measurement |
//!
//! See `DESIGN.md` for the full system inventory and `EXPERIMENTS.md` for
//! paper-vs-measured results of every table and figure.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use dip_controlplane as controlplane;
pub use dip_core as core;
pub use dip_crypto as crypto;
pub use dip_dataplane as dataplane;
pub use dip_fnops as fnops;
pub use dip_protocols as protocols;
pub use dip_scenario as scenario;
pub use dip_sim as sim;
pub use dip_tables as tables;
pub use dip_telemetry as telemetry;
pub use dip_verify as verify;
pub use dip_wire as wire;
pub use dip_workload as workload;

/// The most commonly used items in one import.
pub mod prelude {
    pub use dip_core::host::{deliver, HostContext};
    pub use dip_core::{DipHost, DipRouter, ProcessingBudget, ProtocolId, RouterConfig, Verdict};
    pub use dip_fnops::{Action, DropReason, FnRegistry, PacketCtx, RouterState};
    pub use dip_protocols::opt::OptSession;
    pub use dip_tables::fib::NextHop;
    pub use dip_tables::{Pit, Port};
    pub use dip_verify::{Checker, FnProgram, Report};
    pub use dip_wire::ndn::Name;
    pub use dip_wire::packet::{DipBuilder, DipPacket, DipRepr};
    pub use dip_wire::triple::{FnKey, FnTriple};
    pub use dip_wire::xia::{Dag, DagNode, Xid, XidType};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let _ = DipRouter::new(0, [0; 16]);
        let _ = Name::parse("/x");
        let _ = FnKey::Fib;
    }
}

//! Integration tests for the extension protocols (§5's "providers can
//! support new services by only upgrading FNs") and runtime FN upgrades.

use dip::prelude::*;
use dip::protocols::{netfence, scion_path, telemetry};
use dip::sim::engine::{Host, Network};
use dip_tables::fib::NextHop;
use std::sync::Arc;

#[test]
fn runtime_fn_upgrade_while_traffic_flows() {
    // A router first skips the unknown telemetry FN, then the operator
    // installs the module at runtime and the same traffic starts getting
    // telemetry — no restart, no repaving (§5).
    let mut r = DipRouter::new(7, [1; 16]);
    r.config_mut().default_port = Some(1);

    let mut before = telemetry::probe(4, 64).to_bytes(&[]).unwrap();
    let (v, stats) = r.process(&mut before, 0, 1_000);
    assert_eq!(v, Verdict::Forward(vec![1]));
    assert_eq!(stats.skipped_unsupported, 1);
    let pkt = DipPacket::new_checked(&before[..]).unwrap();
    assert_eq!(telemetry::parse_records(pkt.locations()).unwrap().0.len(), 0);

    // The runtime upgrade.
    r.registry_mut().install(Arc::new(telemetry::TelemetryOp));

    let mut after = telemetry::probe(4, 64).to_bytes(&[]).unwrap();
    let (v, stats) = r.process(&mut after, 5, 2_000);
    assert_eq!(v, Verdict::Forward(vec![1]));
    assert_eq!(stats.fns_executed, 1);
    let pkt = DipPacket::new_checked(&after[..]).unwrap();
    let (records, _) = telemetry::parse_records(pkt.locations()).unwrap();
    assert_eq!(records.len(), 1);
    assert_eq!(records[0].node_id, 7);

    // And downgrade: uninstall returns to skipping.
    assert!(r.registry_mut().uninstall(telemetry::TELE_KEY));
    let mut again = telemetry::probe(4, 64).to_bytes(&[]).unwrap();
    let (_, stats) = r.process(&mut again, 0, 3_000);
    assert_eq!(stats.skipped_unsupported, 1);
}

#[test]
fn telemetry_reconstructs_the_path_in_the_simulator() {
    let name = Name::parse("/telemetered/item");
    let mut net = Network::new(9);
    let mut contents = std::collections::HashMap::new();
    contents.insert(name.compact32(), b"bytes".to_vec());
    let (consumer, routers, _producer) = dip::sim::topology::chain(
        &mut net,
        3,
        Host::consumer(100),
        Host::producer(200, contents),
        |i| [i as u8 + 1; 16],
        30_000, // 30 µs per link
    );
    for &r in &routers {
        let rt = net.router_mut(r).unwrap();
        rt.state_mut().name_fib.add_route(&name, NextHop::port(1));
        rt.registry_mut().install(Arc::new(telemetry::TelemetryOp));
    }

    // An interest carrying telemetry space: F_FIB + F_tele composed.
    let mut locations = name.compact32().to_be_bytes().to_vec();
    let tele_off = (locations.len() * 8) as u16;
    locations.extend_from_slice(&telemetry::tele_field(4));
    let repr = DipRepr {
        fns: vec![
            FnTriple::router(0, 32, FnKey::Fib),
            FnTriple::router(tele_off, telemetry::tele_field_bits(4), telemetry::TELE_KEY),
        ],
        locations,
        ..Default::default()
    };
    net.enable_capture();
    net.send(consumer, 0, repr.to_bytes(&[]).unwrap(), 0);
    net.run();

    // The last interest transmission before the producer carries all
    // three records; reconstruct per-hop latency from the capture.
    let interest_frames: Vec<&(u64, Vec<u8>)> = net
        .captured()
        .iter()
        .filter(|(_, bytes)| {
            DipPacket::new_checked(&bytes[..])
                .ok()
                .and_then(|p| p.triples().ok())
                .is_some_and(|ts| ts.iter().any(|t| t.key == FnKey::Fib))
        })
        .collect();
    let last = interest_frames.last().expect("interest reached the producer side");
    let pkt = DipPacket::new_checked(&last.1[..]).unwrap();
    let tele_bytes = &pkt.locations()[4..];
    let (records, overflow) = telemetry::parse_records(tele_bytes).unwrap();
    assert!(!overflow);
    assert_eq!(records.len(), 3, "one record per router");
    assert_eq!(
        records.iter().map(|r| r.node_id).collect::<Vec<_>>(),
        vec![1, 2, 3],
        "chain() numbers routers 1..=n"
    );
    // Hops are ≥ one link latency apart.
    for w in records.windows(2) {
        assert!(w[1].arrival_us >= w[0].arrival_us + 30);
    }
}

#[test]
fn scion_path_composes_with_telemetry() {
    // Stateless forwarding + INT in one header: two custom FNs.
    let s1: [u8; 16] = [1; 16];
    let s2: [u8; 16] = [2; 16];
    let path = scion_path::ScionPath::construct(&[(0, 5, s1), (2, 6, s2)]);

    let mut locations = path.encode();
    let tele_off = (locations.len() * 8) as u16;
    locations.extend_from_slice(&telemetry::tele_field(2));
    let repr = DipRepr {
        fns: vec![
            FnTriple::router(0, path.encoded_bits(), scion_path::HOPFIELD_KEY),
            FnTriple::router(tele_off, telemetry::tele_field_bits(2), telemetry::TELE_KEY),
        ],
        locations,
        ..Default::default()
    };

    let mut buf = repr.to_bytes(b"payload").unwrap();
    let mk = |id: u64, secret: [u8; 16]| {
        let mut r = DipRouter::new(id, secret);
        r.registry_mut().install(Arc::new(scion_path::HopFieldOp));
        r.registry_mut().install(Arc::new(telemetry::TelemetryOp));
        r
    };
    let mut r1 = mk(11, s1);
    let (v, stats) = r1.process(&mut buf, 0, 1_000);
    assert_eq!(v, Verdict::Forward(vec![5]));
    assert_eq!(stats.fns_executed, 2);
    assert_eq!(stats.cost.table_lookups, 0, "fully stateless hop");

    let mut r2 = mk(22, s2);
    let (v, _) = r2.process(&mut buf, 2, 2_000);
    assert_eq!(v, Verdict::Forward(vec![6]));

    let pkt = DipPacket::new_checked(&buf[..]).unwrap();
    let tele_bytes = &pkt.locations()[path.encode().len()..];
    let (records, _) = telemetry::parse_records(tele_bytes).unwrap();
    assert_eq!(records.iter().map(|r| r.node_id).collect::<Vec<_>>(), vec![11, 22]);
}

#[test]
fn netfence_closed_loop_congestion_control() {
    // Sender -> access (police) -> bottleneck (congested) over raw router
    // calls: the forward path gets marked, the echo halves the permitted
    // rate, recovery is additive.
    let mut access = DipRouter::new(1, [1; 16]);
    access.config_mut().default_port = Some(1);
    access.registry_mut().install(Arc::new(netfence::CongestionOp));
    {
        let nf = access.state_mut().ext.get_or_default::<netfence::NetFenceState>();
        nf.police = true;
        nf.params = Some(netfence::AimdParams {
            initial_rate_bps: 100_000.0,
            min_rate_bps: 1_000.0,
            max_rate_bps: 10_000_000.0,
            additive_increase_bps: 10_000.0,
        });
    }
    let mut bottleneck = DipRouter::new(2, [2; 16]);
    bottleneck.config_mut().default_port = Some(1);
    bottleneck.registry_mut().install(Arc::new(netfence::CongestionOp));
    bottleneck.state_mut().ext.get_or_default::<netfence::NetFenceState>().congested = true;
    let bottleneck_secret = bottleneck.state().local_secret;

    // Forward path: access admits, bottleneck marks.
    let mut pkt = netfence::packet(9, 64).to_bytes(&[0u8; 100]).unwrap();
    assert!(matches!(access.process(&mut pkt, 0, 0).0, Verdict::Forward(_)));
    assert!(matches!(bottleneck.process(&mut pkt, 0, 1).0, Verdict::Forward(_)));
    let marked = DipPacket::new_checked(&pkt[..]).unwrap().locations().to_vec();
    assert_eq!(netfence::parse_field(&marked).unwrap().1, 1);
    // Receiver checks the mark is authentic before echoing.
    assert!(netfence::verify_mark(&marked, &bottleneck_secret));

    // Echo back through the access router: rate halves.
    let before =
        access.state_mut().ext.get_or_default::<netfence::NetFenceState>().flow_rate(9).unwrap();
    let echo = DipRepr {
        fns: vec![FnTriple::router(0, netfence::CONG_FIELD_BITS, netfence::CONG_KEY)],
        locations: marked,
        ..Default::default()
    };
    let mut echo_buf = echo.to_bytes(&[]).unwrap();
    access.process(&mut echo_buf, 1, 2);
    let after =
        access.state_mut().ext.get_or_default::<netfence::NetFenceState>().flow_rate(9).unwrap();
    assert!((after - before / 2.0).abs() < 1.0, "{before} -> {after}");
}

#[test]
fn extension_state_does_not_leak_between_types() {
    // Two custom ops on one router keep independent extension slots.
    let mut r = DipRouter::new(1, [1; 16]);
    r.state_mut().ext.get_or_default::<netfence::NetFenceState>().police = true;
    assert_eq!(r.state().ext.len(), 1);
    #[derive(Default)]
    struct OtherState(u32);
    r.state_mut().ext.get_or_default::<OtherState>().0 = 5;
    assert_eq!(r.state().ext.len(), 2);
    assert!(r.state_mut().ext.get_or_default::<netfence::NetFenceState>().police);
    assert_eq!(r.state_mut().ext.get_or_default::<OtherState>().0, 5);
}

//! Determinism property: the sharded, batched dataplane is
//! behavior-equivalent to a sequential single-router run.
//!
//! For each of the five paper protocols (DIP-32, DIP-128, NDN, OPT, XIA)
//! a deterministic workload is executed twice:
//!
//! * **reference** — one [`DipRouter`] processes every packet in
//!   submission order on the caller thread;
//! * **dataplane** — [`dip::dataplane::Dataplane`] with every
//!   combination of worker count {1, 2, 4} and batch size {1, 8, 33},
//!   workers fed over SPSC rings under lossless backpressure.
//!
//! Equivalence is checked three ways: identical verdicts in submission
//! order, byte-identical packets after FN execution, and identical
//! PIT / content-store state (the per-worker tables merged across shards
//! must equal the reference router's). This holds because flow affinity
//! keeps every flow's packets FIFO on one worker and DIP's per-flow
//! state never crosses a flow boundary; the content store is sized so
//! capacity eviction — a legitimately global-order-dependent behavior —
//! never triggers.

use dip::crypto::DetRng;
use dip::dataplane::{Backpressure, Dataplane, DataplaneConfig};
use dip::prelude::*;
use dip::protocols::{ip, ndn, xia};
use dip::tables::{Port, Ticks, XiaNextHop};
use dip::wire::ipv4::Ipv4Addr;
use dip::wire::ipv6::Ipv6Addr;

/// One packet of workload: bytes as submitted, ingress port, arrival time.
type Packet = (Vec<u8>, Port, Ticks);

const WORKERS: [usize; 3] = [1, 2, 4];
const BATCHES: [usize; 3] = [1, 8, 33];

/// PIT state as a comparable value: (name, faces, expiry, nonces), sorted.
fn pit_digest(router: &DipRouter) -> Vec<(u32, Vec<Port>, Ticks, Vec<u64>)> {
    let mut d: Vec<_> = router
        .state()
        .pit
        .iter()
        .map(|e| (*e.name, e.faces.to_vec(), e.expires_at, e.sorted_nonces()))
        .collect();
    d.sort();
    d
}

/// Content-store state as a comparable value: (name, bytes, inserted_at).
fn cs_digest(router: &DipRouter) -> Vec<(u32, Vec<u8>, Ticks)> {
    let mut d: Vec<_> = router
        .state()
        .content_store
        .as_ref()
        .map(|cs| cs.iter().map(|(k, v, t)| (*k, v.clone(), t)).collect())
        .unwrap_or_default();
    d.sort();
    d
}

/// Runs the workload on a single reference router and on the dataplane at
/// every (workers × batch) point, asserting equivalence at each.
fn assert_deterministic(proto: &str, factory: impl Fn(usize) -> DipRouter, packets: &[Packet]) {
    // Sequential reference.
    let mut reference = factory(0);
    let expected: Vec<(Verdict, Vec<u8>)> = packets
        .iter()
        .map(|(bytes, in_port, now)| {
            let mut buf = bytes.clone();
            let (verdict, _) = reference.process(&mut buf, *in_port, *now);
            (verdict, buf)
        })
        .collect();
    let expected_pit = pit_digest(&reference);
    let expected_cs = cs_digest(&reference);

    for workers in WORKERS {
        for batch in BATCHES {
            let config = DataplaneConfig {
                workers,
                batch_size: batch,
                ring_capacity: 64,
                backpressure: Backpressure::Block,
                record_outcomes: true,
                ..Default::default()
            };
            let mut dp = Dataplane::start(config, &factory);
            for (bytes, in_port, now) in packets {
                let accepted = dp.submit(bytes.clone(), *in_port, *now);
                assert!(accepted.is_some(), "lossless submit refused a packet");
            }
            let report = dp.shutdown();
            let tag = format!("{proto} workers={workers} batch={batch}");

            // Telemetry accounting identity: the registry must account
            // for every injected packet exactly once — forwarded,
            // consumed, or dropped with a reason (no ring drops under
            // lossless backpressure).
            let snap = report.registry.snapshot();
            let forwarded = snap.sum_where("dip_packets_total", &[("outcome", "forwarded")]);
            let consumed = snap.sum_where("dip_packets_total", &[("outcome", "consumed")]);
            let drops = snap.get("dip_drops_total");
            assert_eq!(
                forwarded + consumed + drops,
                packets.len() as u64,
                "{tag}: forwarded + consumed + drops must equal injected"
            );
            assert_eq!(
                snap.sum_where("dip_drops_total", &[("reason", "queue_full")]),
                0,
                "{tag}: lossless backpressure cannot ring-drop"
            );

            let outcomes = report.sorted_outcomes();
            assert_eq!(outcomes.len(), expected.len(), "{tag}: packet count");
            for (i, outcome) in outcomes.iter().enumerate() {
                assert_eq!(outcome.seq, i as u64, "{tag}: submission order");
                assert_eq!(outcome.verdict, expected[i].0, "{tag}: verdict of packet {i}");
                assert_eq!(outcome.bytes, expected[i].1, "{tag}: bytes of packet {i}");
            }

            let mut pit: Vec<_> =
                report.workers.iter().flat_map(|w| pit_digest(&w.router)).collect();
            pit.sort();
            assert_eq!(pit, expected_pit, "{tag}: merged PIT state");
            let mut cs: Vec<_> = report.workers.iter().flat_map(|w| cs_digest(&w.router)).collect();
            cs.sort();
            assert_eq!(cs, expected_cs, "{tag}: merged content-store state");
        }
    }
}

#[test]
fn dip32_sharded_equals_sequential() {
    let factory = |_| {
        let mut r = DipRouter::new(0, [7; 16]);
        r.state_mut().ipv4_fib.add_route(Ipv4Addr::new(10, 0, 0, 0), 8, NextHop::port(1));
        r.state_mut().ipv4_fib.add_route(Ipv4Addr::new(10, 9, 0, 0), 16, NextHop::port(2));
        r
    };
    let mut rng = DetRng::seed_from_u64(0xd1001);
    let packets: Vec<Packet> = (0..240u64)
        .map(|i| {
            // ~32 repeating flows, two route prefixes, some unrouted.
            let flow = rng.gen_index(32) as u8;
            let first = if rng.gen_bool(0.1) { 172 } else { 10 };
            let repr = ip::dip32_packet(
                Ipv4Addr::new(first, flow % 12, flow, 1),
                Ipv4Addr::new(1, 1, 1, 1),
                64,
            );
            (repr.to_bytes(&i.to_be_bytes()).unwrap(), flow as Port % 3, i)
        })
        .collect();
    assert_deterministic("dip32", factory, &packets);
}

#[test]
fn dip128_sharded_equals_sequential() {
    let factory = |_| {
        let mut r = DipRouter::new(0, [8; 16]);
        r.state_mut().ipv6_fib.add_route(
            Ipv6Addr::new([0xfdaa, 0, 0, 0, 0, 0, 0, 0]),
            16,
            NextHop::port(4),
        );
        r
    };
    let mut rng = DetRng::seed_from_u64(0xd1002);
    let packets: Vec<Packet> = (0..160u64)
        .map(|i| {
            let flow = rng.gen_index(24) as u16;
            let prefix = if rng.gen_bool(0.15) { 0xfdbb } else { 0xfdaa };
            let repr = ip::dip128_packet(
                Ipv6Addr::new([prefix, flow, 0, 0, 0, 0, 0, 2]),
                Ipv6Addr::new([0xfdcc, 0, 0, 0, 0, 0, 0, 1]),
                64,
            );
            (repr.to_bytes(&i.to_be_bytes()).unwrap(), 0, i)
        })
        .collect();
    assert_deterministic("dip128", factory, &packets);
}

#[test]
fn ndn_sharded_equals_sequential() {
    let names: Vec<Name> = (0..24).map(|i| Name::parse(&format!("/det/content/{i}"))).collect();
    let names_for_factory = names.clone();
    let factory = move |_| {
        let mut r = DipRouter::new(0, [9; 16]);
        // Capacity far above the distinct-name count: no LRU eviction, so
        // the merged per-shard stores must equal the reference store.
        r.state_mut().enable_content_store(1024);
        for name in &names_for_factory {
            r.state_mut().name_fib.add_route(name, NextHop::port(1));
        }
        r
    };
    let mut rng = DetRng::seed_from_u64(0xd1003);
    let mut packets: Vec<Packet> = Vec::new();
    let mut now = 0u64;
    // Interleaved interests (repeats exercise PIT aggregation and
    // duplicate suppression) and data (PIT consumption + CS insert); late
    // interests for already-answered names hit the content store.
    for round in 0..3 {
        for _ in 0..80 {
            now += 1;
            let name = &names[rng.gen_index(names.len())];
            if round > 0 && rng.gen_bool(0.35) {
                let payload = name.compact32().to_be_bytes();
                packets.push((ndn::data(name, 64).to_bytes(&payload).unwrap(), 9, now));
            } else {
                let face = rng.gen_index(4) as Port;
                packets.push((ndn::interest(name, 64).to_bytes(&[]).unwrap(), face, now));
            }
        }
    }
    assert_deterministic("ndn", factory, &packets);
}

#[test]
fn opt_sharded_equals_sequential() {
    let factory = |_| {
        let mut r = DipRouter::new(0, [0x42; 16]);
        r.config_mut().default_port = Some(1);
        r
    };
    let session = OptSession::establish([5; 16], &[6; 16], &[[0x42; 16]]);
    let packets: Vec<Packet> = (0..120u32)
        .map(|i| {
            let payload = u64::from(i).to_be_bytes();
            let repr = session.packet(&payload, i, 64);
            (repr.to_bytes(&payload).unwrap(), 0, u64::from(i))
        })
        .collect();
    assert_deterministic("opt", factory, &packets);
}

#[test]
fn xia_sharded_equals_sequential() {
    let ad = Xid::derive(b"det-ad");
    let hid = Xid::derive(b"det-hid");
    let local_cid = Xid::derive(b"cid-7");
    let factory = move |_| {
        let mut r = DipRouter::new(0, [3; 16]);
        r.state_mut().xia.add_route(XidType::Ad, ad, XiaNextHop::Port(1));
        r.state_mut().xia.add_route(XidType::Cid, local_cid, XiaNextHop::Local);
        r
    };
    let mut rng = DetRng::seed_from_u64(0xd1005);
    let packets: Vec<Packet> = (0..120u64)
        .map(|i| {
            // 16 distinct CIDs; cid-7 terminates locally, the rest fall
            // back to the AD route.
            let cid = Xid::derive(format!("cid-{}", rng.gen_index(16)).as_bytes());
            let dag = Dag::direct_with_fallback(DagNode::sink(XidType::Cid, cid), ad, hid).unwrap();
            (xia::packet(&dag, 64).to_bytes(b"stream").unwrap(), 0, i)
        })
        .collect();
    assert_deterministic("xia", factory, &packets);
}

//! Scenario-subsystem gates: byte determinism of full scenario runs,
//! the NDN-vs-IPv4 partition divergence, and honest PIT-expiry
//! accounting — all through the real control plane (SPF-built routes,
//! never hand-written FIBs).

use dip::scenario::{partition_sweep, run_scenario, ScenarioSpec};

/// Two runs of the same spec must agree on every counter the report
/// carries — the fingerprint digests all of them.
fn assert_byte_deterministic(spec: &ScenarioSpec) {
    let a = run_scenario(spec);
    let b = run_scenario(spec);
    assert!(a.converged, "{}: control plane must converge", spec.name);
    assert_eq!(a.fingerprint, b.fingerprint, "{}: fingerprint differs", spec.name);
    assert_eq!(a.phases.len(), b.phases.len());
    for (pa, pb) in a.phases.iter().zip(&b.phases) {
        assert_eq!(pa.name, pb.name);
        assert_eq!(pa.start, pb.start);
        assert_eq!(pa.cache_hits, pb.cache_hits, "{}/{}", spec.name, pa.name);
        assert_eq!(pa.link_dropped, pb.link_dropped, "{}/{}", spec.name, pa.name);
        assert_eq!(pa.pit_entries, pb.pit_entries, "{}/{}", spec.name, pa.name);
        assert_eq!(pa.cs_entries, pb.cs_entries, "{}/{}", spec.name, pa.name);
        assert_eq!(pa.drops, pb.drops, "{}/{}", spec.name, pa.name);
        assert_eq!(pa.reconvergence_ns, pb.reconvergence_ns, "{}/{}", spec.name, pa.name);
        for (ta, tb) in pa.traffic.iter().zip(&pb.traffic) {
            assert_eq!(ta.protocol, tb.protocol);
            assert_eq!(ta.injected, tb.injected, "{}/{}/{}", spec.name, pa.name, ta.protocol);
            assert_eq!(ta.delivered, tb.delivered, "{}/{}/{}", spec.name, pa.name, ta.protocol);
        }
    }
    assert_eq!(a.accounted, b.accounted);
    assert_eq!(a.sent, b.sent);
    assert_eq!(a.spf_runs, b.spf_runs);
    assert!(a.identity_ok && b.identity_ok, "{}: accounting identity", spec.name);
}

#[test]
fn fat_tree_partition_scenario_is_byte_deterministic() {
    assert_byte_deterministic(&ScenarioSpec::partition(4, 300_000, 12, 7));
}

#[test]
fn as_graph_scenario_is_byte_deterministic() {
    assert_byte_deterministic(&ScenarioSpec::as_graph(24, 2, 4, 300_000, 10, 11));
}

/// The paper's disruption-tolerance divergence: at every nonzero
/// partition window, content-named retrieval (answered by in-network
/// caches) strictly out-delivers host-based IPv4 — and at window zero
/// the two agree at full delivery.
#[test]
fn ndn_out_delivers_ipv4_at_every_nonzero_partition_length() {
    let windows = [0u64, 150_000, 400_000, 700_000];
    for point in partition_sweep(4, &windows, 12, 7) {
        let report = &point.report;
        assert!(report.converged, "window {}", point.window);
        assert!(report.identity_ok, "window {}: identity through the partition", point.window);
        let outage = report.phase("outage").expect("outage phase");
        let ndn = outage.delivery_fraction("ndn").expect("ndn injected");
        let ipv4 = outage.delivery_fraction("ipv4").expect("ipv4 injected");
        if point.window == 0 {
            assert_eq!((ndn, ipv4), (1.0, 1.0), "no partition, no loss");
        } else {
            assert!(
                ndn > ipv4,
                "window {}: NDN must strictly out-deliver IPv4 ({ndn} vs {ipv4})",
                point.window
            );
            assert!(outage.link_dropped > 0, "window {}: the cut must bite", point.window);
        }
    }
}

/// With a PIT TTL shorter than the fat-tree RTT and no content store,
/// every returning data packet finds its PIT entry aged out: the drop
/// taxonomy says `pit_expired` (not a silent disappearance), the
/// eviction counter matches, and the accounting identity still holds.
#[test]
fn aged_out_pit_entries_surface_as_pit_expired_drops() {
    let mut spec = ScenarioSpec::fat_tree(2, 8, 7);
    spec.name = "pit_expiry".into();
    spec.content_store = 0;
    spec.pit_ttl = 1_000; // << the multi-hop interest/data RTT
    spec.phases.truncate(1); // the NDN catalog sweep only
    let report = run_scenario(&spec);
    assert!(report.converged);
    let phase = &report.phases[0];
    assert_eq!(phase.delivered("ndn"), 0, "nothing survives a sub-RTT PIT TTL");
    let expired =
        phase.drops.iter().find(|(reason, _)| reason == "pit_expired").map_or(0, |&(_, n)| n);
    assert!(expired > 0, "returning data must be dropped as pit_expired: {:?}", phase.drops);
    assert!(
        phase.pit_expired_evictions >= expired,
        "every pit_expired drop is a counted eviction ({} < {expired})",
        phase.pit_expired_evictions
    );
    assert!(report.identity_ok, "identity holds under mass PIT expiry");
}

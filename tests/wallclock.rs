//! Wall-clock engine accounting: real threads, exact books.
//!
//! The measuring engine (DESIGN.md §15) gives up virtual-time's replayable
//! latencies, but its *accounting* must stay as trustworthy as the model's:
//! under `Block` backpressure every injected packet is executed exactly
//! once, so `forwarded + consumed + dropped == injected` with zero
//! ring-full drops, and the outcome *classes* — which packets forward,
//! which consume, which drop, per the packet bytes alone — must reproduce
//! across runs regardless of worker count or thread interleaving. Churn
//! is polled on trace virtual time and flaps only its dedicated pool
//! routes (never a route the trace resolves through), so the same
//! equalities hold mid-storm.

use dip::workload::{
    run_wallclock_finite, ChurnSpec, Mix, TrafficClass, WallClockConfig, WorkloadSpec,
};

const RATE_PPS: u64 = 400_000;
const PACKETS: usize = 3_000;

fn spec_for(class: TrafficClass) -> WorkloadSpec {
    WorkloadSpec { seed: 41, mix: Mix::single(class), table_size: 300, ..Default::default() }
}

fn cfg_for(workers: usize, churn: Option<ChurnSpec>) -> WallClockConfig {
    WallClockConfig { workers, ring_capacity: 64, churn, ..Default::default() }
}

#[test]
fn accounting_identity_holds_at_every_worker_count() {
    for class in [TrafficClass::Ipv4, TrafficClass::Ndn] {
        for workers in [1usize, 2, 4] {
            let spec = spec_for(class);
            let r = run_wallclock_finite(&spec, RATE_PPS, PACKETS, &cfg_for(workers, None));
            assert_eq!(r.injected, PACKETS as u64, "{class:?} workers={workers} injects all");
            assert!(r.identity_holds, "{class:?} workers={workers}: {r:?}");
            assert_eq!(r.queue_full, 0, "{class:?} workers={workers}: Block never drops at ring");
        }
    }
}

#[test]
fn outcome_classes_are_thread_count_invariant() {
    // The packet bytes decide the outcome class; threads only decide who
    // executes. Every worker count must report the same class counts,
    // and two runs at the same count must agree exactly.
    let spec = spec_for(TrafficClass::Ipv4);
    let baseline = run_wallclock_finite(&spec, RATE_PPS, PACKETS, &cfg_for(1, None));
    assert!(baseline.identity_holds, "baseline: {baseline:?}");
    for workers in [1usize, 2, 4] {
        let a = run_wallclock_finite(&spec, RATE_PPS, PACKETS, &cfg_for(workers, None));
        let b = run_wallclock_finite(&spec, RATE_PPS, PACKETS, &cfg_for(workers, None));
        assert_eq!(
            (a.forwarded, a.consumed, a.dropped),
            (b.forwarded, b.consumed, b.dropped),
            "workers={workers} must reproduce"
        );
        assert_eq!(
            (a.forwarded, a.consumed, a.dropped),
            (baseline.forwarded, baseline.consumed, baseline.dropped),
            "workers={workers} must match the single-worker classes"
        );
    }
}

#[test]
fn identity_and_determinism_survive_a_churn_storm() {
    // 1M updates per virtual second, polled on packet timestamps: the
    // storm's delta schedule is a pure function of the trace, and the
    // flap pool never covers a trace route, so outcome counts reproduce
    // exactly even though snapshot pickup races worker execution.
    let churn = ChurnSpec { rate_ups: 1_000_000, ..Default::default() };
    for workers in [1usize, 2, 4] {
        let spec = spec_for(TrafficClass::Ipv4);
        let a =
            run_wallclock_finite(&spec, RATE_PPS, PACKETS, &cfg_for(workers, Some(churn.clone())));
        let b =
            run_wallclock_finite(&spec, RATE_PPS, PACKETS, &cfg_for(workers, Some(churn.clone())));
        assert!(a.identity_holds, "workers={workers} under churn: {a:?}");
        assert_eq!(a.queue_full, 0, "workers={workers}: lossless under churn");
        assert!(a.churn_deltas > 0, "workers={workers}: the storm must actually commit deltas");
        assert_eq!(
            (a.injected, a.forwarded, a.consumed, a.dropped, a.churn_deltas),
            (b.injected, b.forwarded, b.consumed, b.dropped, b.churn_deltas),
            "workers={workers} churn outcome counts must reproduce"
        );
    }
}

//! Property-based tests over the core data structures and invariants.

use dip::prelude::*;
use dip_tables::bit_trie::{BitTrie, Prefix};
use dip_wire::bits;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Wire layer
// ---------------------------------------------------------------------

fn arb_triple() -> impl Strategy<Value = FnTriple> {
    (0u16..2048, 0u16..2048, 0u16..0x7fff, any::<bool>()).prop_map(|(loc, len, key, host)| {
        FnTriple { field_loc: loc, field_len: len, key: FnKey::from_wire(key), host }
    })
}

fn arb_repr() -> impl Strategy<Value = DipRepr> {
    (
        any::<u8>(),
        1u8..=255,
        any::<bool>(),
        proptest::collection::vec(arb_triple(), 0..8),
        proptest::collection::vec(any::<u8>(), 0..300),
    )
        .prop_map(|(next_header, hop_limit, parallel, mut fns, locations)| {
            // Clamp every triple inside the locations area so the repr is valid.
            let loc_bits = (locations.len() * 8) as u16;
            for t in fns.iter_mut() {
                if loc_bits == 0 {
                    t.field_loc = 0;
                    t.field_len = 0;
                } else {
                    t.field_loc %= loc_bits;
                    t.field_len = t.field_len.min(loc_bits - t.field_loc);
                }
            }
            DipRepr { next_header, hop_limit, parallel, fns, locations }
        })
}

proptest! {
    #[test]
    fn dip_header_roundtrips(repr in arb_repr(), payload in proptest::collection::vec(any::<u8>(), 0..64)) {
        let bytes = repr.to_bytes(&payload).unwrap();
        prop_assert_eq!(bytes.len(), repr.header_len() + payload.len());
        let pkt = DipPacket::new_checked(&bytes[..]).unwrap();
        let parsed = DipRepr::parse(&pkt).unwrap();
        prop_assert_eq!(&parsed, &repr);
        prop_assert_eq!(pkt.payload(), &payload[..]);
    }

    #[test]
    fn header_len_formula_holds(repr in arb_repr()) {
        // §2.2: header length is derivable from FN_Num and FN_LocLen alone.
        prop_assert_eq!(repr.header_len(), 6 + 6 * repr.fns.len() + repr.locations.len());
    }

    #[test]
    fn truncated_packets_never_panic(repr in arb_repr(), cut in 0usize..100) {
        let bytes = repr.to_bytes(b"xy").unwrap();
        let cut = cut.min(bytes.len());
        // Must return an error or a packet, never panic.
        let _ = DipPacket::new_checked(&bytes[..cut]);
    }

    #[test]
    fn bit_field_write_then_read(
        mut buf in proptest::collection::vec(any::<u8>(), 1..64),
        off in 0usize..256,
        len in 0usize..128,
        value in proptest::collection::vec(any::<u8>(), 0..20),
    ) {
        let total_bits = buf.len() * 8;
        let off = off % total_bits;
        let len = len.min(total_bits - off);
        let needed = bits::byte_len(len);
        prop_assume!(value.len() >= needed);
        let before = buf.clone();
        bits::write_bits(&mut buf, off, len, &value).unwrap();
        let read = bits::read_bits(&buf, off, len).unwrap();
        // The read value equals the written value up to pad bits.
        let mut expected = value[..needed].to_vec();
        if len % 8 != 0 && needed > 0 {
            expected[needed - 1] &= 0xffu8 << (8 - len % 8);
        }
        prop_assert_eq!(read, expected);
        // Bits outside the field are untouched.
        for i in 0..total_bits {
            if i < off || i >= off + len {
                prop_assert_eq!(
                    bits::get_bit(&buf, i).unwrap(),
                    bits::get_bit(&before, i).unwrap(),
                    "bit {} changed", i
                );
            }
        }
    }

    #[test]
    fn triple_wire_roundtrip(t in arb_triple()) {
        let mut buf = [0u8; 6];
        t.emit(&mut buf).unwrap();
        prop_assert_eq!(FnTriple::parse(&buf).unwrap(), t);
    }
}

// ---------------------------------------------------------------------
// Tables: LPM against a naive model
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn bit_trie_matches_naive_lpm(
        routes in proptest::collection::vec((any::<u32>(), 0u8..=32), 1..40),
        probes in proptest::collection::vec(any::<u32>(), 1..40),
    ) {
        let mut trie = BitTrie::new();
        for (i, (addr, len)) in routes.iter().enumerate() {
            // Mask the address to its prefix so duplicates collapse the
            // same way in both models.
            let masked = if *len == 0 { 0 } else { addr & (u32::MAX << (32 - len)) };
            trie.insert(Prefix::v4(masked, *len), i);
        }
        for probe in probes {
            let expected = routes
                .iter()
                .enumerate()
                .filter(|(_, (addr, len))| {
                    let mask = if *len == 0 { 0 } else { u32::MAX << (32 - len) };
                    probe & mask == addr & mask
                })
                .max_by(|a, b| {
                    // Longest prefix wins; later insertion wins ties.
                    (a.1 .1, a.0).cmp(&(b.1 .1, b.0))
                })
                .map(|(i, (_, len))| (*len, i));
            let got = trie.lookup(Prefix::v4_host(probe)).map(|(l, v)| (l, *v));
            prop_assert_eq!(got, expected, "probe {:08x}", probe);
        }
    }

    #[test]
    fn name_trie_matches_naive_lpm(
        routes in proptest::collection::vec(proptest::collection::vec(0u8..4, 0..4), 1..20),
        probe in proptest::collection::vec(0u8..4, 0..6),
    ) {
        use dip_tables::NameTrie;
        let to_name = |v: &Vec<u8>| Name::from_components(v.iter().map(|c| vec![*c]).collect());
        let mut trie = NameTrie::new();
        for (i, r) in routes.iter().enumerate() {
            trie.insert(&to_name(r), i);
        }
        let probe_name = to_name(&probe);
        let expected = routes
            .iter()
            .enumerate()
            .filter(|(_, r)| to_name(r).is_prefix_of(&probe_name))
            .max_by_key(|(i, r)| (r.len(), *i))
            .map(|(i, r)| (r.len(), i));
        let got = trie.lookup(&probe_name).map(|(d, v)| (d, *v));
        prop_assert_eq!(got, expected);
    }
}

// ---------------------------------------------------------------------
// Crypto invariants
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn aes_decrypt_inverts_encrypt(key in any::<[u8; 16]>(), block in any::<[u8; 16]>()) {
        let aes = dip::crypto::Aes128::new(&key);
        let mut b = block;
        aes.encrypt_block(&mut b);
        aes.decrypt_block(&mut b);
        prop_assert_eq!(b, block);
    }

    #[test]
    fn mac_distinguishes_messages(
        key in any::<[u8; 16]>(),
        a in proptest::collection::vec(any::<u8>(), 0..80),
        b in proptest::collection::vec(any::<u8>(), 0..80),
    ) {
        use dip::crypto::{CbcMac, MacAlgorithm};
        prop_assume!(a != b);
        let mac = CbcMac::new_2em(&key);
        prop_assert_ne!(mac.mac(&a), mac.mac(&b));
    }

    #[test]
    fn mmo_hash_is_injective_on_sample(a in proptest::collection::vec(any::<u8>(), 0..64),
                                       b in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assume!(a != b);
        prop_assert_ne!(dip::crypto::mmo_hash(&a), dip::crypto::mmo_hash(&b));
    }
}

// ---------------------------------------------------------------------
// XIA DAGs
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn acyclic_dags_roundtrip(n in 1usize..6, seed in any::<u64>()) {
        // Build a random DAG with forward-only edges (guaranteed acyclic).
        use dip_wire::xia::{Dag, DagNode, Xid, XidType, NO_EDGE};
        let mut x = seed | 1;
        let mut rand = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let nodes: Vec<DagNode> = (0..n)
            .map(|i| {
                let mut edges = [NO_EDGE; 4];
                for e in edges.iter_mut() {
                    let candidates = (n - i - 1) as u64;
                    if candidates > 0 && rand() % 2 == 0 {
                        *e = (i + 1 + (rand() % candidates) as usize) as u8;
                    }
                }
                DagNode { ty: XidType::from_wire((rand() % 5) as u32 + 0x10), xid: Xid::derive(&rand().to_be_bytes()), edges }
            })
            .collect();
        let dag = Dag::new(&[0], nodes).unwrap();
        let enc = dag.encode();
        let (dec, used) = Dag::decode(&enc).unwrap();
        prop_assert_eq!(dec, dag);
        prop_assert_eq!(used, enc.len());
    }
}

// ---------------------------------------------------------------------
// PIT model
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn pit_never_exceeds_capacity(
        ops in proptest::collection::vec((0u32..20, 0u32..4, any::<u64>()), 1..200),
        cap in 1usize..16,
    ) {
        let mut pit: Pit<u32> = Pit::new(cap, 100);
        let mut now = 0;
        for (name, face, nonce) in ops {
            now += 1;
            let _ = pit.record_interest(name, face, nonce, now);
            prop_assert!(pit.len() <= cap);
        }
    }

    #[test]
    fn pit_consume_returns_recorded_faces_once(
        faces in proptest::collection::vec(0u32..8, 1..6),
    ) {
        let mut pit: Pit<u32> = Pit::new(64, 1000);
        for (i, f) in faces.iter().enumerate() {
            let _ = pit.record_interest(1, *f, i as u64, 0);
        }
        let got = pit.consume(&1, 10).unwrap();
        // Every recorded face present exactly once.
        let mut expected: Vec<u32> = faces.clone();
        expected.dedup_by(|a, b| a == b); // consecutive dups collapse
        let mut unique: Vec<u32> = Vec::new();
        for f in faces {
            if !unique.contains(&f) {
                unique.push(f);
            }
        }
        prop_assert_eq!(got, unique);
        prop_assert!(pit.consume(&1, 11).is_none());
    }
}

// ---------------------------------------------------------------------
// End-to-end property: OPT verification accepts iff untampered
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn opt_verifies_iff_untampered(
        payload in proptest::collection::vec(any::<u8>(), 1..128),
        tamper_at in proptest::option::of(0usize..68),
    ) {
        let secret = [3u8; 16];
        let session = OptSession::establish([1; 16], &[2; 16], &[secret]);
        let mut router = DipRouter::new(0, secret);
        router.config_mut().default_port = Some(1);
        let mut buf = session.packet(&payload, 7, 64).to_bytes(&payload).unwrap();
        router.process(&mut buf, 0, 0);
        if let Some(at) = tamper_at {
            let loc_start = 6 + 4 * 6;
            buf[loc_start + at] ^= 0x01;
        }
        let mut host_state = RouterState::new(99, [0; 16]);
        let result = deliver(&mut buf, &session.host_context(), &mut host_state, &FnRegistry::standard(), 0);
        match tamper_at {
            None => prop_assert_eq!(result.map(|d| d.verified), Ok(true)),
            Some(_) => prop_assert_ne!(result.map(|d| d.verified), Ok(true)),
        }
    }
}

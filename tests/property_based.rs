//! Property-based tests over the core data structures and invariants.
//!
//! Rewritten from `proptest` to a deterministic in-repo generator
//! ([`dip_crypto::DetRng`]) so the suite runs fully offline. Each test
//! draws a fixed number of pseudo-random cases from a fixed seed, which
//! makes failures exactly reproducible (the case index is in the panic
//! message).

use dip::prelude::*;
use dip_crypto::DetRng;
use dip_tables::bit_trie::{BitTrie, Prefix};
use dip_wire::bits;

fn rng(seed: u64) -> DetRng {
    DetRng::seed_from_u64(seed)
}

fn arb_bytes(r: &mut DetRng, max_len: usize) -> Vec<u8> {
    let n = r.gen_index(max_len + 1);
    let mut v = vec![0u8; n];
    r.fill_bytes(&mut v);
    v
}

fn arb_triple(r: &mut DetRng) -> FnTriple {
    FnTriple {
        field_loc: (r.next_u32() % 2048) as u16,
        field_len: (r.next_u32() % 2048) as u16,
        key: FnKey::from_wire((r.next_u32() % 0x7fff) as u16),
        host: r.gen_bool(0.5),
    }
}

fn arb_repr(r: &mut DetRng) -> DipRepr {
    let next_header = r.next_u32() as u8;
    let hop_limit = 1 + (r.next_u32() % 255) as u8;
    let parallel = r.gen_bool(0.5);
    let mut fns: Vec<FnTriple> = (0..r.gen_index(8)).map(|_| arb_triple(r)).collect();
    let locations = arb_bytes(r, 299);
    // Clamp every triple inside the locations area so the repr is valid.
    let loc_bits = (locations.len() * 8) as u16;
    for t in fns.iter_mut() {
        if loc_bits == 0 {
            t.field_loc = 0;
            t.field_len = 0;
        } else {
            t.field_loc %= loc_bits;
            t.field_len = t.field_len.min(loc_bits - t.field_loc);
        }
    }
    DipRepr { next_header, hop_limit, parallel, fns, locations }
}

// ---------------------------------------------------------------------
// Wire layer
// ---------------------------------------------------------------------

#[test]
fn dip_header_roundtrips() {
    let mut r = rng(0x01);
    for case in 0..256 {
        let repr = arb_repr(&mut r);
        let payload = arb_bytes(&mut r, 63);
        let bytes = repr.to_bytes(&payload).unwrap();
        assert_eq!(bytes.len(), repr.header_len() + payload.len(), "case {case}");
        let pkt = DipPacket::new_checked(&bytes[..]).unwrap();
        let parsed = DipRepr::parse(&pkt).unwrap();
        assert_eq!(parsed, repr, "case {case}");
        assert_eq!(pkt.payload(), &payload[..], "case {case}");
    }
}

#[test]
fn header_len_formula_holds() {
    // §2.2: header length is derivable from FN_Num and FN_LocLen alone.
    let mut r = rng(0x02);
    for case in 0..256 {
        let repr = arb_repr(&mut r);
        assert_eq!(repr.header_len(), 6 + 6 * repr.fns.len() + repr.locations.len(), "case {case}");
    }
}

#[test]
fn truncated_packets_never_panic() {
    let mut r = rng(0x03);
    for _ in 0..256 {
        let repr = arb_repr(&mut r);
        let bytes = repr.to_bytes(b"xy").unwrap();
        let cut = r.gen_index(100).min(bytes.len());
        // Must return an error or a packet, never panic.
        let _ = DipPacket::new_checked(&bytes[..cut]);
    }
}

#[test]
fn bit_field_write_then_read() {
    let mut r = rng(0x04);
    for case in 0..512 {
        let mut buf = {
            let n = 1 + r.gen_index(63);
            let mut v = vec![0u8; n];
            r.fill_bytes(&mut v);
            v
        };
        let total_bits = buf.len() * 8;
        let off = r.gen_index(256) % total_bits;
        let len = r.gen_index(128).min(total_bits - off);
        let needed = bits::byte_len(len);
        let mut value = vec![0u8; needed.max(r.gen_index(20))];
        r.fill_bytes(&mut value);
        let before = buf.clone();
        bits::write_bits(&mut buf, off, len, &value).unwrap();
        let read = bits::read_bits(&buf, off, len).unwrap();
        // The read value equals the written value up to pad bits.
        let mut expected = value[..needed].to_vec();
        if !len.is_multiple_of(8) && needed > 0 {
            expected[needed - 1] &= 0xffu8 << (8 - len % 8);
        }
        assert_eq!(read, expected, "case {case}");
        // Bits outside the field are untouched.
        for i in 0..total_bits {
            if i < off || i >= off + len {
                assert_eq!(
                    bits::get_bit(&buf, i).unwrap(),
                    bits::get_bit(&before, i).unwrap(),
                    "case {case}: bit {i} changed"
                );
            }
        }
    }
}

#[test]
fn triple_wire_roundtrip() {
    let mut r = rng(0x05);
    for case in 0..512 {
        let t = arb_triple(&mut r);
        let mut buf = [0u8; 6];
        t.emit(&mut buf).unwrap();
        assert_eq!(FnTriple::parse(&buf).unwrap(), t, "case {case}");
    }
}

// ---------------------------------------------------------------------
// Tables: LPM against a naive model
// ---------------------------------------------------------------------

#[test]
fn bit_trie_matches_naive_lpm() {
    let mut r = rng(0x06);
    for case in 0..128 {
        let routes: Vec<(u32, u8)> =
            (0..1 + r.gen_index(39)).map(|_| (r.next_u32(), (r.next_u32() % 33) as u8)).collect();
        let probes: Vec<u32> = (0..1 + r.gen_index(39)).map(|_| r.next_u32()).collect();
        let mut trie = BitTrie::new();
        for (i, (addr, len)) in routes.iter().enumerate() {
            // Mask the address to its prefix so duplicates collapse the
            // same way in both models.
            let masked = if *len == 0 { 0 } else { addr & (u32::MAX << (32 - len)) };
            trie.insert(Prefix::v4(masked, *len), i);
        }
        for probe in probes {
            let expected = routes
                .iter()
                .enumerate()
                .filter(|(_, (addr, len))| {
                    let mask = if *len == 0 { 0 } else { u32::MAX << (32 - len) };
                    probe & mask == addr & mask
                })
                .max_by(|a, b| {
                    // Longest prefix wins; later insertion wins ties.
                    (a.1 .1, a.0).cmp(&(b.1 .1, b.0))
                })
                .map(|(i, (_, len))| (*len, i));
            let got = trie.lookup(Prefix::v4_host(probe)).map(|(l, v)| (l, *v));
            assert_eq!(got, expected, "case {case}, probe {probe:08x}");
        }
    }
}

#[test]
fn name_trie_matches_naive_lpm() {
    use dip_tables::NameTrie;
    let mut r = rng(0x07);
    for case in 0..256 {
        let routes: Vec<Vec<u8>> = (0..1 + r.gen_index(19))
            .map(|_| (0..r.gen_index(4)).map(|_| (r.next_u32() % 4) as u8).collect())
            .collect();
        let probe: Vec<u8> = (0..r.gen_index(6)).map(|_| (r.next_u32() % 4) as u8).collect();
        let to_name = |v: &Vec<u8>| Name::from_components(v.iter().map(|c| vec![*c]).collect());
        let mut trie = NameTrie::new();
        for (i, route) in routes.iter().enumerate() {
            trie.insert(&to_name(route), i);
        }
        let probe_name = to_name(&probe);
        let expected = routes
            .iter()
            .enumerate()
            .filter(|(_, route)| to_name(route).is_prefix_of(&probe_name))
            .max_by_key(|(i, route)| (route.len(), *i))
            .map(|(i, route)| (route.len(), i));
        let got = trie.lookup(&probe_name).map(|(d, v)| (d, *v));
        assert_eq!(got, expected, "case {case}");
    }
}

// ---------------------------------------------------------------------
// Crypto invariants
// ---------------------------------------------------------------------

#[test]
fn aes_decrypt_inverts_encrypt() {
    let mut r = rng(0x08);
    for case in 0..256 {
        let mut key = [0u8; 16];
        let mut block = [0u8; 16];
        r.fill_bytes(&mut key);
        r.fill_bytes(&mut block);
        let aes = dip::crypto::Aes128::new(&key);
        let mut b = block;
        aes.encrypt_block(&mut b);
        aes.decrypt_block(&mut b);
        assert_eq!(b, block, "case {case}");
    }
}

#[test]
fn mac_distinguishes_messages() {
    use dip::crypto::{CbcMac, MacAlgorithm};
    let mut r = rng(0x09);
    for case in 0..256 {
        let mut key = [0u8; 16];
        r.fill_bytes(&mut key);
        let a = arb_bytes(&mut r, 79);
        let b = arb_bytes(&mut r, 79);
        if a == b {
            continue;
        }
        let mac = CbcMac::new_2em(&key);
        assert_ne!(mac.mac(&a), mac.mac(&b), "case {case}");
    }
}

#[test]
fn mmo_hash_is_injective_on_sample() {
    let mut r = rng(0x0a);
    for case in 0..256 {
        let a = arb_bytes(&mut r, 63);
        let b = arb_bytes(&mut r, 63);
        if a == b {
            continue;
        }
        assert_ne!(dip::crypto::mmo_hash(&a), dip::crypto::mmo_hash(&b), "case {case}");
    }
}

// ---------------------------------------------------------------------
// XIA DAGs
// ---------------------------------------------------------------------

#[test]
fn acyclic_dags_roundtrip() {
    // Build random DAGs with forward-only edges (guaranteed acyclic).
    use dip_wire::xia::{Dag, DagNode, Xid, XidType, NO_EDGE};
    let mut r = rng(0x0b);
    for case in 0..256 {
        let n = 1 + r.gen_index(5);
        let seed = r.next_u64();
        let mut x = seed | 1;
        let mut rand = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let nodes: Vec<DagNode> = (0..n)
            .map(|i| {
                let mut edges = [NO_EDGE; 4];
                for e in edges.iter_mut() {
                    let candidates = (n - i - 1) as u64;
                    if candidates > 0 && rand() % 2 == 0 {
                        *e = (i + 1 + (rand() % candidates) as usize) as u8;
                    }
                }
                DagNode {
                    ty: XidType::from_wire((rand() % 5) as u32 + 0x10),
                    xid: Xid::derive(&rand().to_be_bytes()),
                    edges,
                }
            })
            .collect();
        let dag = Dag::new(&[0], nodes).unwrap();
        let enc = dag.encode();
        let (dec, used) = Dag::decode(&enc).unwrap();
        assert_eq!(dec, dag, "case {case}");
        assert_eq!(used, enc.len(), "case {case}");
    }
}

// ---------------------------------------------------------------------
// PIT model
// ---------------------------------------------------------------------

#[test]
fn pit_never_exceeds_capacity() {
    let mut r = rng(0x0c);
    for case in 0..64 {
        let cap = 1 + r.gen_index(15);
        let n_ops = 1 + r.gen_index(199);
        let mut pit: Pit<u32> = Pit::new(cap, 100);
        let mut now = 0;
        for _ in 0..n_ops {
            let name = r.next_u32() % 20;
            let face = r.next_u32() % 4;
            let nonce = r.next_u64();
            now += 1;
            let _ = pit.record_interest(name, face, nonce, now);
            assert!(pit.len() <= cap, "case {case}");
        }
    }
}

#[test]
fn pit_consume_returns_recorded_faces_once() {
    let mut r = rng(0x0d);
    for case in 0..256 {
        let faces: Vec<u32> = (0..1 + r.gen_index(5)).map(|_| r.next_u32() % 8).collect();
        let mut pit: Pit<u32> = Pit::new(64, 1000);
        for (i, f) in faces.iter().enumerate() {
            let _ = pit.record_interest(1, *f, i as u64, 0);
        }
        let got = pit.consume(&1, 10).unwrap();
        // Every recorded face present exactly once, in first-seen order.
        let mut unique: Vec<u32> = Vec::new();
        for f in faces {
            if !unique.contains(&f) {
                unique.push(f);
            }
        }
        assert_eq!(got, unique, "case {case}");
        assert!(pit.consume(&1, 11).is_none(), "case {case}");
    }
}

// ---------------------------------------------------------------------
// End-to-end property: OPT verification accepts iff untampered
// ---------------------------------------------------------------------

#[test]
fn opt_verifies_iff_untampered() {
    let mut r = rng(0x0e);
    for case in 0..32 {
        let payload = {
            let mut v = vec![0u8; 1 + r.gen_index(127)];
            r.fill_bytes(&mut v);
            v
        };
        let tamper_at = if r.gen_bool(0.5) { Some(r.gen_index(68)) } else { None };
        let secret = [3u8; 16];
        let session = OptSession::establish([1; 16], &[2; 16], &[secret]);
        let mut router = DipRouter::new(0, secret);
        router.config_mut().default_port = Some(1);
        let mut buf = session.packet(&payload, 7, 64).to_bytes(&payload).unwrap();
        router.process(&mut buf, 0, 0);
        if let Some(at) = tamper_at {
            let loc_start = 6 + 4 * 6;
            buf[loc_start + at] ^= 0x01;
        }
        let mut host_state = RouterState::new(99, [0; 16]);
        let result =
            deliver(&mut buf, &session.host_context(), &mut host_state, &FnRegistry::standard(), 0);
        match tamper_at {
            None => assert_eq!(result.map(|d| d.verified), Ok(true), "case {case}"),
            Some(_) => assert_ne!(result.map(|d| d.verified), Ok(true), "case {case}"),
        }
    }
}

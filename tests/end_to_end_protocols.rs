//! Cross-crate integration: every §3 protocol realization pushed through
//! multi-hop router chains via the facade crate.

use dip::prelude::*;
use dip::protocols::{ip, ndn, ndn_opt, xia};
use dip_tables::XiaNextHop;
use dip_wire::ipv4::Ipv4Addr;
use dip_wire::ipv6::Ipv6Addr;

fn chain_of(n: usize) -> Vec<DipRouter> {
    (0..n).map(|i| DipRouter::new(i as u64, [i as u8 + 1; 16])).collect()
}

#[test]
fn dip32_across_five_hops() {
    let mut routers = chain_of(5);
    for r in routers.iter_mut() {
        r.state_mut().ipv4_fib.add_route(Ipv4Addr::new(10, 0, 0, 0), 8, NextHop::port(1));
    }
    let mut buf = ip::dip32_packet(Ipv4Addr::new(10, 1, 1, 1), Ipv4Addr::new(172, 16, 0, 1), 64)
        .to_bytes(b"p")
        .unwrap();
    for r in routers.iter_mut() {
        let (v, _) = r.process(&mut buf, 0, 0);
        assert_eq!(v, Verdict::Forward(vec![1]));
    }
    // Five hop-limit decrements visible on the wire.
    assert_eq!(DipPacket::new_checked(&buf[..]).unwrap().hop_limit(), 59);
}

#[test]
fn dip128_and_source_recording() {
    let mut r = DipRouter::new(0, [1; 16]);
    r.state_mut().ipv6_fib.add_route(
        Ipv6Addr::new([0xfdaa, 0, 0, 0, 0, 0, 0, 0]),
        16,
        NextHop::port(4),
    );
    let repr = ip::dip128_packet(
        Ipv6Addr::new([0xfdaa, 0, 0, 0, 0, 0, 0, 2]),
        Ipv6Addr::new([0xfdbb, 0, 0, 0, 0, 0, 0, 1]),
        64,
    );
    assert_eq!(repr.header_len(), 50);
    let mut buf = repr.to_bytes(&[]).unwrap();
    let (v, stats) = r.process(&mut buf, 0, 0);
    assert_eq!(v, Verdict::Forward(vec![4]));
    assert_eq!(stats.fns_executed, 2);
}

#[test]
fn ndn_interest_data_across_three_hops() {
    let name = Name::parse("/conf/hotnets/dip");
    let mut routers = chain_of(3);
    for r in routers.iter_mut() {
        r.state_mut().name_fib.add_route(&name, NextHop::port(1));
    }
    // Interest travels consumer -> producer, arriving on port 0 everywhere.
    let mut ibuf = ndn::interest(&name, 64).to_bytes(&[]).unwrap();
    for r in routers.iter_mut() {
        let (v, _) = r.process(&mut ibuf, 0, 100);
        assert_eq!(v, Verdict::Forward(vec![1]));
    }
    // Data travels back, arriving on port 1, following PIT state.
    let mut dbuf = ndn::data(&name, 64).to_bytes(b"content").unwrap();
    for r in routers.iter_mut().rev() {
        let (v, _) = r.process(&mut dbuf, 1, 200);
        assert_eq!(v, Verdict::Forward(vec![0]));
    }
    // All PIT entries consumed.
    for r in &routers {
        assert!(!r.state().pit.contains(&name.compact32(), 201));
    }
}

#[test]
fn opt_three_hop_chain_verifies_and_binds_path_order() {
    let secrets: Vec<[u8; 16]> = vec![[10; 16], [20; 16], [30; 16]];
    let session = OptSession::establish([0x77; 16], &[5; 16], &secrets);
    let mut routers: Vec<DipRouter> = secrets
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let mut r = DipRouter::new(i as u64, *s);
            r.config_mut().default_port = Some(1);
            r
        })
        .collect();

    let payload = b"authenticated".to_vec();
    let mut buf = session.packet(&payload, 42, 64).to_bytes(&payload).unwrap();
    for r in routers.iter_mut() {
        let (v, _) = r.process(&mut buf, 0, 0);
        assert!(matches!(v, Verdict::Forward(_)));
    }
    let mut host_state = RouterState::new(99, [0; 16]);
    let d = deliver(&mut buf, &session.host_context(), &mut host_state, &FnRegistry::standard(), 0)
        .unwrap();
    assert!(d.verified);

    // The same packet traversing the routers in the wrong order fails.
    let mut buf2 = session.packet(&payload, 42, 64).to_bytes(&payload).unwrap();
    for r in routers.iter_mut().rev() {
        r.process(&mut buf2, 0, 0);
    }
    assert_eq!(
        deliver(&mut buf2, &session.host_context(), &mut host_state, &FnRegistry::standard(), 0),
        Err(DropReason::AuthenticationFailed)
    );
}

#[test]
fn ndn_opt_composition_runs_both_protocol_halves() {
    let name = Name::parse("hotnets.org");
    let session = OptSession::establish([0xAB; 16], &[5; 16], &[[10; 16]]);
    let mut router = DipRouter::new(0, [10; 16]);
    router.state_mut().name_fib.add_route(&name, NextHop::port(8));

    let mut ibuf = ndn_opt::interest(&name, 64).to_bytes(&[]).unwrap();
    let (v, _) = router.process(&mut ibuf, 3, 0);
    assert_eq!(v, Verdict::Forward(vec![8]));

    let payload = b"secure content".to_vec();
    let mut dbuf = ndn_opt::data(&session, &name, &payload, 1, 64).to_bytes(&payload).unwrap();
    let (v, stats) = router.process(&mut dbuf, 8, 10);
    assert_eq!(v, Verdict::Forward(vec![3]));
    // NDN half: PIT consumed. OPT half: 3 auth FNs ran, ver skipped.
    assert_eq!(stats.fns_executed, 4);
    assert_eq!(stats.skipped_host, 1);

    let mut host_state = RouterState::new(99, [0; 16]);
    let d =
        deliver(&mut dbuf, &session.host_context(), &mut host_state, &FnRegistry::standard(), 20)
            .unwrap();
    assert!(d.verified);
}

#[test]
fn xia_multi_domain_walk() {
    let movie = Xid::derive(b"movie");
    let ad1 = Xid::derive(b"ad1");
    let hid = Xid::derive(b"hid");
    let dag = Dag::direct_with_fallback(DagNode::sink(XidType::Cid, movie), ad1, hid).unwrap();

    // Hop 1 only knows the AD; hop 2 is the AD; hop 3 owns everything.
    let mut r1 = DipRouter::new(1, [1; 16]);
    r1.state_mut().xia.add_route(XidType::Ad, ad1, XiaNextHop::Port(1));
    let mut r2 = DipRouter::new(2, [2; 16]);
    r2.state_mut().xia.add_route(XidType::Ad, ad1, XiaNextHop::Local);
    r2.state_mut().xia.add_route(XidType::Hid, hid, XiaNextHop::Port(2));
    let mut r3 = DipRouter::new(3, [3; 16]);
    r3.state_mut().xia.add_route(XidType::Hid, hid, XiaNextHop::Local);
    r3.state_mut().xia.add_route(XidType::Cid, movie, XiaNextHop::Local);

    let mut buf = xia::packet(&dag, 64).to_bytes(b"stream").unwrap();
    let (v, _) = r1.process(&mut buf, 0, 0);
    assert_eq!(v, Verdict::Forward(vec![1]));
    let (v, _) = r2.process(&mut buf, 0, 0);
    assert_eq!(v, Verdict::Forward(vec![2]));
    let (v, _) = r3.process(&mut buf, 0, 0);
    assert_eq!(v, Verdict::Deliver);
}

#[test]
fn mixed_traffic_one_router() {
    // A single router handling all five protocols interleaved — the
    // narrow-waist unification claim.
    let name = Name::parse("/n");
    let session = OptSession::establish([1; 16], &[2; 16], &[[9; 16]]);
    let mut r = DipRouter::new(0, [9; 16]);
    r.config_mut().default_port = Some(5);
    r.state_mut().ipv4_fib.add_route(Ipv4Addr::new(10, 0, 0, 0), 8, NextHop::port(1));
    r.state_mut().ipv6_fib.add_route(Ipv6Addr::new([1, 0, 0, 0, 0, 0, 0, 0]), 16, NextHop::port(2));
    r.state_mut().name_fib.add_route(&name, NextHop::port(3));
    r.state_mut().xia.add_route(XidType::Cid, Xid::derive(b"c"), XiaNextHop::Port(4));

    for round in 0..50u64 {
        let mut a =
            ip::dip32_packet(Ipv4Addr::new(10, 0, 0, round as u8), Ipv4Addr::new(1, 1, 1, 1), 64)
                .to_bytes(&round.to_be_bytes())
                .unwrap();
        assert_eq!(r.process(&mut a, 0, round).0, Verdict::Forward(vec![1]));

        let mut b = ndn::interest(&name, 64).to_bytes(&round.to_be_bytes()).unwrap();
        let v = r.process(&mut b, 7, round).0;
        assert!(matches!(v, Verdict::Forward(_) | Verdict::Consumed), "round {round}: {v:?}");

        let mut c = session
            .packet(&round.to_be_bytes(), round as u32, 64)
            .to_bytes(&round.to_be_bytes())
            .unwrap();
        assert_eq!(r.process(&mut c, 0, round).0, Verdict::Forward(vec![5]));

        let dag = Dag::direct_with_fallback(
            DagNode::sink(XidType::Cid, Xid::derive(b"c")),
            Xid::derive(b"a"),
            Xid::derive(b"h"),
        )
        .unwrap();
        let mut d = xia::packet(&dag, 64).to_bytes(&[]).unwrap();
        assert_eq!(r.process(&mut d, 0, round).0, Verdict::Forward(vec![4]));
    }
}

//! Property-based tests for the extension protocols and the dissector.

use dip::prelude::*;
use dip::protocols::{netfence, scion_path, telemetry};
use dip::wire::pretty::dissect;
use proptest::prelude::*;
use std::sync::Arc;

// ---------------------------------------------------------------------
// Dissector: total on arbitrary input
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn dissect_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = dissect(&bytes);
    }

    #[test]
    fn dissect_always_renders_valid_packets(repr_bytes in valid_packet()) {
        let s = dissect(&repr_bytes);
        prop_assert!(s.starts_with("DIP v1"), "{s}");
    }
}

fn valid_packet() -> impl Strategy<Value = Vec<u8>> {
    (
        proptest::collection::vec(any::<u8>(), 0..64),
        proptest::collection::vec((0u16..0x7fff, any::<bool>()), 0..5),
    )
        .prop_map(|(locations, keys)| {
            let loc_bits = (locations.len() * 8) as u16;
            let fns = keys
                .into_iter()
                .map(|(k, host)| FnTriple {
                    field_loc: 0,
                    field_len: loc_bits,
                    key: FnKey::from_wire(k),
                    host,
                })
                .collect();
            DipRepr { fns, locations, ..Default::default() }.to_bytes(b"pp").unwrap()
        })
}

// ---------------------------------------------------------------------
// SCION paths
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]
    #[test]
    fn random_scion_paths_forward_hop_by_hop(
        hops in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<[u8; 16]>()), 1..6),
    ) {
        let path = scion_path::ScionPath::construct(&hops);
        let mut buf = path.packet(64).to_bytes(&[]).unwrap();
        for (i, (ingress, egress, secret)) in hops.iter().enumerate() {
            let mut r = DipRouter::new(i as u64, *secret);
            r.registry_mut().install(Arc::new(scion_path::HopFieldOp));
            let (v, _) = r.process(&mut buf, u32::from(*ingress), 0);
            prop_assert_eq!(v, Verdict::Forward(vec![u32::from(*egress)]), "hop {}", i);
        }
    }

    #[test]
    fn any_single_byte_corruption_of_a_hop_field_is_caught(
        byte in 0usize..10,
        bit in 0u8..8,
    ) {
        // One-hop path; corrupt one byte of its hop field (offset 2..12 of
        // the encoding). The hop must reject — unless the flip cancels out
        // (it can't: every byte is covered by the MAC or IS the MAC).
        let secret = [7u8; 16];
        let path = scion_path::ScionPath::construct(&[(3, 5, secret)]);
        let mut repr = path.packet(64);
        repr.locations[2 + byte] ^= 1 << bit;
        let mut buf = repr.to_bytes(&[]).unwrap();
        let mut r = DipRouter::new(0, secret);
        r.registry_mut().install(Arc::new(scion_path::HopFieldOp));
        let (v, _) = r.process(&mut buf, 3, 0);
        prop_assert!(
            matches!(v, Verdict::Drop(DropReason::AuthenticationFailed)),
            "corruption of hop-field byte {byte} bit {bit} slipped through: {v:?}"
        );
    }
}

// ---------------------------------------------------------------------
// NetFence AIMD invariants
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]
    #[test]
    fn aimd_rate_stays_within_bounds(
        events in proptest::collection::vec(any::<bool>(), 1..200), // true = congestion echo
    ) {
        let params = netfence::AimdParams {
            initial_rate_bps: 50_000.0,
            min_rate_bps: 5_000.0,
            max_rate_bps: 200_000.0,
            additive_increase_bps: 20_000.0,
        };
        let mut r = DipRouter::new(1, [1; 16]);
        r.config_mut().default_port = Some(1);
        r.registry_mut().install(Arc::new(netfence::CongestionOp));
        {
            let nf = r.state_mut().ext.get_or_default::<netfence::NetFenceState>();
            nf.police = true;
            nf.params = Some(params);
        }
        let mut now = 0u64;
        for is_echo in events {
            now += 50_000_000; // 50 ms apart
            let mut repr = netfence::packet(1, 64);
            if is_echo {
                repr.locations[8] = 1;
            }
            let mut buf = repr.to_bytes(&[0u8; 100]).unwrap();
            let _ = r.process(&mut buf, 0, now);
            if let Some(rate) =
                r.state_mut().ext.get_or_default::<netfence::NetFenceState>().flow_rate(1)
            {
                prop_assert!(rate >= params.min_rate_bps - 1e-9, "rate {rate} below floor");
                prop_assert!(rate <= params.max_rate_bps + 1e-9, "rate {rate} above ceiling");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]
    #[test]
    fn telemetry_count_equals_min_hops_capacity(
        capacity in 0u8..6,
        n_hops in 0usize..10,
    ) {
        let mut buf = telemetry::probe(capacity, 64).to_bytes(&[]).unwrap();
        for i in 0..n_hops {
            let mut r = DipRouter::new(i as u64, [0; 16]);
            r.config_mut().default_port = Some(1);
            r.registry_mut().install(Arc::new(telemetry::TelemetryOp));
            let (v, _) = r.process(&mut buf, 0, i as u64 * 1000);
            prop_assert!(matches!(v, Verdict::Forward(_)));
        }
        let pkt = DipPacket::new_checked(&buf[..]).unwrap();
        let (records, overflow) = telemetry::parse_records(pkt.locations()).unwrap();
        prop_assert_eq!(records.len(), n_hops.min(usize::from(capacity)));
        prop_assert_eq!(overflow, n_hops > usize::from(capacity));
        // Node ids in visit order.
        for (i, rec) in records.iter().enumerate() {
            prop_assert_eq!(rec.node_id, i as u32);
        }
    }
}

//! Property-based tests for the extension protocols and the dissector.
//!
//! Deterministically seeded via [`dip_crypto::DetRng`] (no `proptest`), so
//! the suite runs fully offline and failures reproduce exactly.

use dip::prelude::*;
use dip::protocols::{netfence, scion_path, telemetry};
use dip::wire::pretty::dissect;
use dip_crypto::DetRng;
use std::sync::Arc;

fn rng(seed: u64) -> DetRng {
    DetRng::seed_from_u64(seed)
}

// ---------------------------------------------------------------------
// Dissector: total on arbitrary input
// ---------------------------------------------------------------------

#[test]
fn dissect_never_panics() {
    let mut r = rng(0x20);
    for _ in 0..512 {
        let mut bytes = vec![0u8; r.gen_index(256)];
        r.fill_bytes(&mut bytes);
        let _ = dissect(&bytes);
    }
}

#[test]
fn dissect_always_renders_valid_packets() {
    let mut r = rng(0x21);
    for case in 0..256 {
        let bytes = valid_packet(&mut r);
        let s = dissect(&bytes);
        assert!(s.starts_with("DIP v1"), "case {case}: {s}");
    }
}

fn valid_packet(r: &mut DetRng) -> Vec<u8> {
    let mut locations = vec![0u8; r.gen_index(64)];
    r.fill_bytes(&mut locations);
    let loc_bits = (locations.len() * 8) as u16;
    let fns = (0..r.gen_index(5))
        .map(|_| FnTriple {
            field_loc: 0,
            field_len: loc_bits,
            key: FnKey::from_wire((r.next_u32() % 0x7fff) as u16),
            host: r.gen_bool(0.5),
        })
        .collect();
    DipRepr { fns, locations, ..Default::default() }.to_bytes(b"pp").unwrap()
}

// ---------------------------------------------------------------------
// SCION paths
// ---------------------------------------------------------------------

#[test]
fn random_scion_paths_forward_hop_by_hop() {
    let mut r = rng(0x22);
    for case in 0..40 {
        let hops: Vec<(u8, u8, [u8; 16])> = (0..1 + r.gen_index(5))
            .map(|_| {
                let mut secret = [0u8; 16];
                r.fill_bytes(&mut secret);
                (r.next_u32() as u8, r.next_u32() as u8, secret)
            })
            .collect();
        let path = scion_path::ScionPath::construct(&hops);
        let mut buf = path.packet(64).to_bytes(&[]).unwrap();
        for (i, (ingress, egress, secret)) in hops.iter().enumerate() {
            let mut router = DipRouter::new(i as u64, *secret);
            router.registry_mut().install(Arc::new(scion_path::HopFieldOp));
            let (v, _) = router.process(&mut buf, u32::from(*ingress), 0);
            assert_eq!(v, Verdict::Forward(vec![u32::from(*egress)]), "case {case}, hop {i}");
        }
    }
}

#[test]
fn any_single_byte_corruption_of_a_hop_field_is_caught() {
    // One-hop path; corrupt one byte of its hop field (offset 2..12 of
    // the encoding). The hop must reject — unless the flip cancels out
    // (it can't: every byte is covered by the MAC or IS the MAC).
    for byte in 0usize..10 {
        for bit in 0u8..8 {
            let secret = [7u8; 16];
            let path = scion_path::ScionPath::construct(&[(3, 5, secret)]);
            let mut repr = path.packet(64);
            repr.locations[2 + byte] ^= 1 << bit;
            let mut buf = repr.to_bytes(&[]).unwrap();
            let mut r = DipRouter::new(0, secret);
            r.registry_mut().install(Arc::new(scion_path::HopFieldOp));
            let (v, _) = r.process(&mut buf, 3, 0);
            assert!(
                matches!(v, Verdict::Drop(DropReason::AuthenticationFailed)),
                "corruption of hop-field byte {byte} bit {bit} slipped through: {v:?}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// NetFence AIMD invariants
// ---------------------------------------------------------------------

#[test]
fn aimd_rate_stays_within_bounds() {
    let mut rgen = rng(0x23);
    for case in 0..40 {
        let events: Vec<bool> = (0..1 + rgen.gen_index(199)).map(|_| rgen.gen_bool(0.5)).collect();
        let params = netfence::AimdParams {
            initial_rate_bps: 50_000.0,
            min_rate_bps: 5_000.0,
            max_rate_bps: 200_000.0,
            additive_increase_bps: 20_000.0,
        };
        let mut r = DipRouter::new(1, [1; 16]);
        r.config_mut().default_port = Some(1);
        r.registry_mut().install(Arc::new(netfence::CongestionOp));
        {
            let nf = r.state_mut().ext.get_or_default::<netfence::NetFenceState>();
            nf.police = true;
            nf.params = Some(params);
        }
        let mut now = 0u64;
        for is_echo in events {
            now += 50_000_000; // 50 ms apart
            let mut repr = netfence::packet(1, 64);
            if is_echo {
                repr.locations[8] = 1;
            }
            let mut buf = repr.to_bytes(&[0u8; 100]).unwrap();
            let _ = r.process(&mut buf, 0, now);
            if let Some(rate) =
                r.state_mut().ext.get_or_default::<netfence::NetFenceState>().flow_rate(1)
            {
                assert!(rate >= params.min_rate_bps - 1e-9, "case {case}: rate {rate} below floor");
                assert!(
                    rate <= params.max_rate_bps + 1e-9,
                    "case {case}: rate {rate} above ceiling"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------

#[test]
fn telemetry_count_equals_min_hops_capacity() {
    for capacity in 0u8..6 {
        for n_hops in 0usize..10 {
            let mut buf = telemetry::probe(capacity, 64).to_bytes(&[]).unwrap();
            for i in 0..n_hops {
                let mut r = DipRouter::new(i as u64, [0; 16]);
                r.config_mut().default_port = Some(1);
                r.registry_mut().install(Arc::new(telemetry::TelemetryOp));
                let (v, _) = r.process(&mut buf, 0, i as u64 * 1000);
                assert!(matches!(v, Verdict::Forward(_)));
            }
            let pkt = DipPacket::new_checked(&buf[..]).unwrap();
            let (records, overflow) = telemetry::parse_records(pkt.locations()).unwrap();
            assert_eq!(records.len(), n_hops.min(usize::from(capacity)));
            assert_eq!(overflow, n_hops > usize::from(capacity));
            // Node ids in visit order.
            for (i, rec) in records.iter().enumerate() {
                assert_eq!(rec.node_id, i as u32);
            }
        }
    }
}

//! `diplint` integration suite: the linter must reproduce every invariant
//! the old grep gates enforced — verified by seeding each violation into a
//! scratch tree and expecting exit 1 — and must pass the real repository
//! clean.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn diplint(root: &Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_diplint"))
        .arg("--root")
        .arg(root)
        .output()
        .expect("run diplint")
}

/// A scratch repo skeleton under the system temp dir, removed on drop.
struct Scratch {
    root: PathBuf,
}

impl Scratch {
    fn new(tag: &str) -> Self {
        let root = std::env::temp_dir().join(format!("diplint-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).unwrap();
        Scratch { root }
    }

    /// Writes `content` at `rel` (creating parent directories).
    fn file(&self, rel: &str, content: &str) -> &Self {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(path, content).unwrap();
        self
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

fn expect_violation(scratch: &Scratch, rule: &str) {
    let out = diplint(&scratch.root);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "expected exit 1, stdout:\n{stdout}");
    assert!(stdout.contains(rule), "expected rule {rule:?} in output:\n{stdout}");
}

fn expect_clean(scratch: &Scratch) {
    let out = diplint(&scratch.root);
    assert!(out.status.success(), "expected clean, got:\n{}", String::from_utf8_lossy(&out.stdout));
}

#[test]
fn real_repo_is_clean() {
    let out = diplint(Path::new(env!("CARGO_MANIFEST_DIR")));
    assert!(
        out.status.success(),
        "diplint flagged the repository:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn route_snapshot_outside_controlplane_is_flagged() {
    let seeded = format!("fn rogue() {{ let s = {}; }}\n", "RouteSnapshot::default()");
    let s = Scratch::new("snapshot");
    s.file("crates/dataplane/src/worker.rs", &seeded);
    expect_violation(&s, "route-snapshot");

    // The same construction is legitimate inside the control plane.
    let ok = Scratch::new("snapshot-ok");
    ok.file("crates/controlplane/src/compile.rs", &seeded);
    expect_clean(&ok);
}

#[test]
fn route_snapshot_literal_and_capture_forms_are_flagged() {
    let s = Scratch::new("snapshot-forms");
    s.file("src/main.rs", &format!("let s = {} routes }};\n", "RouteSnapshot {"));
    expect_violation(&s, "route-snapshot");

    let c = Scratch::new("snapshot-capture");
    c.file(
        "crates/workload/src/gen.rs",
        &format!("let s = {}(&state);\n", "RouteSnapshot::capture"),
    );
    expect_violation(&c, "route-snapshot");
}

#[test]
fn route_delta_outside_routes_is_flagged() {
    let call = format!("let t = table{}&store, &slots);\n", ".apply_delta(");
    let s = Scratch::new("delta-call");
    s.file("crates/dataplane/src/worker.rs", &call);
    expect_violation(&s, "route-delta");

    let def = format!("pub {}(&self) -> Self {{ self.clone() }}\n", "fn build_from");
    let d = Scratch::new("delta-def");
    d.file("crates/controlplane/src/tables.rs", &def);
    expect_violation(&d, "route-delta");

    // Both forms are legitimate inside the routes crate.
    let ok = Scratch::new("delta-ok");
    ok.file("crates/routes/src/lpm.rs", &format!("{call}{def}"));
    expect_clean(&ok);
}

#[test]
fn link_admin_outside_sim_and_scenario_is_flagged() {
    let immediate = format!("fn cut(net: &mut Network) {{ net{}r, 0); }}\n", ".link_down(");
    let s = Scratch::new("linkadmin");
    s.file("crates/bench/src/fault.rs", &immediate);
    expect_violation(&s, "link-admin");

    let scheduled = format!("net{}40_000, r, 0);\n", ".schedule_link_up(");
    let t = Scratch::new("linkadmin-sched");
    t.file("src/bin/breaker.rs", &scheduled);
    expect_violation(&t, "link-admin");

    // The simulator owns link state; the scenario crate scripts it.
    let sim = Scratch::new("linkadmin-sim-ok");
    sim.file("crates/sim/src/engine.rs", &immediate);
    expect_clean(&sim);
    let scn = Scratch::new("linkadmin-scenario-ok");
    scn.file("crates/scenario/src/run.rs", &format!("{immediate}{scheduled}"));
    expect_clean(&scn);
}

#[test]
fn quantile_outside_telemetry_is_flagged() {
    let seeded = format!("pub {}(&self, q: f64) -> u64 {{ 0 }}\n", "fn quantile");
    let s = Scratch::new("quantile");
    s.file("crates/bench/src/stats.rs", &seeded);
    expect_violation(&s, "quantile");

    let ok = Scratch::new("quantile-ok");
    ok.file("crates/telemetry/src/hist.rs", &seeded);
    expect_clean(&ok);
}

#[test]
fn drop_reason_outside_telemetry_is_flagged() {
    let seeded = format!("pub {} {{ NoRoute }}\n", "enum DropReason");
    let s = Scratch::new("dropreason");
    s.file("crates/core/src/drops.rs", &seeded);
    expect_violation(&s, "drop-taxonomy");

    let ok = Scratch::new("dropreason-ok");
    ok.file("crates/telemetry/src/drop_reason.rs", &seeded);
    expect_clean(&ok);
}

#[test]
fn unsafe_outside_the_ring_is_flagged() {
    let seeded = format!("{} {{ core::hint::unreachable_unchecked() }}\n", "unsafe");
    let s = Scratch::new("unsafe");
    s.file("crates/core/src/fast.rs", &seeded);
    expect_violation(&s, &format!("{}-containment", "unsafe"));
}

#[test]
fn unjustified_unsafe_in_the_ring_is_flagged() {
    let s = Scratch::new("unsafe-ring");
    s.file(
        "crates/dataplane/src/ring.rs",
        &format!("fn read(&self) {{ {} {{ (*self.cell.get()).take() }} }}\n", "unsafe"),
    );
    expect_violation(&s, &format!("{}-containment", "unsafe"));

    // A SAFETY comment within the window justifies it.
    let ok = Scratch::new("unsafe-ring-ok");
    ok.file(
        "crates/dataplane/src/ring.rs",
        &format!(
            "// SAFETY: single consumer, slot published via Release tail.\nfn read(&self) {{ {} {{ (*self.cell.get()).take() }} }}\n",
            "unsafe"
        ),
    );
    expect_clean(&ok);
}

#[test]
fn lint_words_inside_comments_and_idents_do_not_trip_the_unsafe_rule() {
    let s = Scratch::new("unsafe-negative");
    s.file(
        "crates/core/src/lib.rs",
        &format!(
            "#![forbid({}_code)]\n// this comment says {} and that is fine\n",
            "unsafe", "unsafe"
        ),
    );
    expect_clean(&s);
}

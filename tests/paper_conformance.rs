//! Paper conformance suite: every concrete number and behaviour the paper
//! states, asserted verbatim against this implementation.
//!
//! Each test cites the paper section it checks. If the implementation
//! drifts from the paper, this file is what fails.

use dip::prelude::*;
use dip::protocols::{header_sizes, ip, ndn, ndn_opt, opt::opt_triples, opt::OptSession};

/// Table 1: "Field operations in the DIP prototype" — notation, key.
#[test]
fn table1_operations_and_keys() {
    let expected: [(&str, &str, u16); 11] = [
        ("32-bit address match", "F_32_match", 1),
        ("128-bit address match", "F_128_match", 2),
        ("source address", "F_source", 3),
        ("forwarding information base match", "F_FIB", 4),
        ("pending interest table match", "F_PIT", 5),
        ("load parameters", "F_parm", 6),
        ("calculate MAC", "F_MAC", 7),
        ("mark update", "F_mark", 8),
        ("destination verification", "F_ver", 9),
        ("parse the directed acyclic graph", "F_DAG", 10),
        ("handle intent", "F_intent", 11),
    ];
    for (description, notation, key) in expected {
        let k = FnKey::from_wire(key);
        assert_eq!(k.description(), description, "key {key}");
        assert_eq!(k.notation(), notation, "key {key}");
        assert_eq!(k.to_wire(), key);
        // And the standard registry actually implements it.
        assert!(FnRegistry::standard().supports(k), "key {key} not installed");
    }
}

/// Table 2: "The packet header size overhead" — all seven rows.
#[test]
fn table2_header_sizes() {
    let session = OptSession::establish([1; 16], &[2; 16], &[[3; 16]]);
    let name = Name::parse("hotnets.org");
    assert_eq!(dip::wire::ipv6::IPV6_HEADER_LEN, 40, "IPv6 forwarding");
    assert_eq!(dip::wire::ipv4::IPV4_HEADER_LEN, 20, "IPv4 forwarding");
    assert_eq!(
        ip::dip128_packet(
            dip::wire::ipv6::Ipv6Addr::new([1, 0, 0, 0, 0, 0, 0, 2]),
            dip::wire::ipv6::Ipv6Addr::new([3, 0, 0, 0, 0, 0, 0, 4]),
            64
        )
        .header_len(),
        50,
        "DIP-128 forwarding"
    );
    assert_eq!(
        ip::dip32_packet(
            dip::wire::ipv4::Ipv4Addr::new(1, 2, 3, 4),
            dip::wire::ipv4::Ipv4Addr::new(5, 6, 7, 8),
            64
        )
        .header_len(),
        26,
        "DIP-32 forwarding"
    );
    assert_eq!(ndn::interest(&name, 64).header_len(), 16, "NDN forwarding");
    assert_eq!(session.packet(b"x", 1, 64).header_len(), 98, "OPT forwarding");
    assert_eq!(ndn_opt::data(&session, &name, b"x", 1, 64).header_len(), 108, "NDN+OPT forwarding");
    // The library constants agree.
    assert_eq!(header_sizes::IPV6, 40);
    assert_eq!(header_sizes::IPV4, 20);
    assert_eq!(header_sizes::DIP_128, 50);
    assert_eq!(header_sizes::DIP_32, 26);
    assert_eq!(header_sizes::NDN, 16);
    assert_eq!(header_sizes::OPT, 98);
    assert_eq!(header_sizes::NDN_OPT, 108);
}

/// §2.2: "The basic DIP header occupies 6 bytes" (Table 2 paragraph) and
/// "we can use the FN number and the FN locations length to derive the DIP
/// header length."
#[test]
fn basic_header_is_six_bytes_and_length_is_derivable() {
    assert_eq!(dip::wire::BASIC_HEADER_LEN, 6);
    let repr = DipRepr {
        fns: vec![FnTriple::router(0, 32, FnKey::Fib); 3],
        locations: vec![0u8; 20],
        ..Default::default()
    };
    let bytes = repr.to_bytes(&[]).unwrap();
    let hdr = dip::wire::BasicHeader::parse(&bytes).unwrap();
    assert_eq!(hdr.header_len(), 6 + 3 * 6 + 20);
    assert_eq!(hdr.header_len(), bytes.len());
}

/// §2.2: "The highest bit of the operation key field is a tag bit to
/// indicate whether the operation should be performed by the router or the
/// host."
#[test]
fn operation_key_tag_bit_is_the_msb() {
    let mut buf = [0u8; 6];
    FnTriple::host(0, 544, FnKey::Ver).emit(&mut buf).unwrap();
    assert_eq!(buf[4] & 0x80, 0x80);
    FnTriple::router(0, 544, FnKey::Ver).emit(&mut buf).unwrap();
    assert_eq!(buf[4] & 0x80, 0x00);
}

/// §2.2: "The lowest bit [of the packet parameter] indicates whether the
/// operation modules can be executed in parallel ... The higher ten bits
/// represent the length of FN locations."
#[test]
fn packet_parameter_bit_layout() {
    use dip::wire::PacketParameter;
    let p = PacketParameter { parallel: true, fn_loc_len: 0, reserved: 0 };
    assert_eq!(p.to_wire().unwrap(), 0b1);
    let p = PacketParameter { parallel: false, fn_loc_len: 1, reserved: 0 };
    assert_eq!(p.to_wire().unwrap(), 0b10);
    // Ten bits: max 1023.
    assert!(PacketParameter { parallel: false, fn_loc_len: 1023, reserved: 0 }.to_wire().is_ok());
    assert!(PacketParameter { parallel: false, fn_loc_len: 1024, reserved: 0 }.to_wire().is_err());
}

/// §3, IP forwarding: "the FN triples used in our prototype are
/// (loc: 0, len: 128/32, match) and (loc: 128/32, len: 128/32, source)"
/// with the destination in the lower bits and source in the upper bits.
#[test]
fn section3_ip_triples() {
    let v4 = ip::dip32_packet(
        dip::wire::ipv4::Ipv4Addr::new(1, 2, 3, 4),
        dip::wire::ipv4::Ipv4Addr::new(5, 6, 7, 8),
        64,
    );
    assert_eq!(v4.fns[0], FnTriple::router(0, 32, FnKey::Match32));
    assert_eq!(v4.fns[1], FnTriple::router(32, 32, FnKey::Source));
    assert_eq!(&v4.locations[..4], &[1, 2, 3, 4], "dst in the lower 32 bits");
    assert_eq!(&v4.locations[4..], &[5, 6, 7, 8], "src in the upper 32 bits");

    let v6 = ip::dip128_packet(
        dip::wire::ipv6::Ipv6Addr::new([1, 0, 0, 0, 0, 0, 0, 0]),
        dip::wire::ipv6::Ipv6Addr::new([2, 0, 0, 0, 0, 0, 0, 0]),
        64,
    );
    assert_eq!(v6.fns[0], FnTriple::router(0, 128, FnKey::Match128));
    assert_eq!(v6.fns[1], FnTriple::router(128, 128, FnKey::Source));
}

/// §3, NDN: "use the following two FN triples (loc: 0, len: 32, key: 4)
/// and (loc: 0, len: 32, key: 5) to explicitly customize NDN packet
/// processing and set the content name in the FN locations."
#[test]
fn section3_ndn_triples() {
    let name = Name::parse("hotnets.org");
    let interest = ndn::interest(&name, 64);
    assert_eq!(interest.fns, vec![FnTriple::router(0, 32, FnKey::Fib)]);
    assert_eq!(interest.locations, name.compact32().to_be_bytes().to_vec());
    let data = ndn::data(&name, 64);
    assert_eq!(data.fns, vec![FnTriple::router(0, 32, FnKey::Pit)]);
}

/// §3, OPT: "we use the triple (loc: 128, len: 128, key: 6) ... the FN
/// triples (loc: 0, len: 416, key: 7) and (loc: 288, len: 128, key: 8) ...
/// the triple (loc: 0, len: 544, key: 9)".
#[test]
fn section3_opt_triples() {
    let fns = opt_triples(0);
    assert_eq!(fns[0], FnTriple::router(128, 128, FnKey::Parm));
    assert_eq!(fns[0].key.to_wire(), 6);
    assert_eq!(fns[1], FnTriple::router(0, 416, FnKey::Mac));
    assert_eq!(fns[1].key.to_wire(), 7);
    assert_eq!(fns[2], FnTriple::router(288, 128, FnKey::Mark));
    assert_eq!(fns[2].key.to_wire(), 8);
    assert_eq!(fns[3], FnTriple::host(0, 544, FnKey::Ver));
    assert_eq!(fns[3].key.to_wire(), 9);
    assert!(fns[3].host, "F_ver instructs the *destination host* to verify");
}

/// §3, NDN+OPT: "we compose the following FN modules (F_FIB, F_PIT,
/// F_parm, F_MAC, F_mark and F_ver)". Interest carries F_FIB; the data
/// packet carries the other five.
#[test]
fn section3_ndn_opt_composition() {
    let session = OptSession::establish([1; 16], &[2; 16], &[[3; 16]]);
    let name = Name::parse("hotnets.org");
    let interest_keys: Vec<FnKey> =
        ndn_opt::interest(&name, 64).fns.iter().map(|t| t.key).collect();
    assert_eq!(interest_keys, vec![FnKey::Fib]);
    let data_keys: Vec<FnKey> =
        ndn_opt::data(&session, &name, b"x", 1, 64).fns.iter().map(|t| t.key).collect();
    assert_eq!(data_keys, vec![FnKey::Pit, FnKey::Parm, FnKey::Mac, FnKey::Mark, FnKey::Ver]);
    let all: std::collections::BTreeSet<u16> =
        interest_keys.iter().chain(&data_keys).map(|k| k.to_wire()).collect();
    assert_eq!(all, std::collections::BTreeSet::from([4, 5, 6, 7, 8, 9]));
}

/// Algorithm 1 line 5: "if FN[i].tag == 1 then continue" — routers skip
/// host operations.
#[test]
fn algorithm1_skips_host_tagged_fns() {
    let mut router = DipRouter::new(1, [1; 16]);
    router.config_mut().default_port = Some(1);
    let repr = DipRepr {
        fns: vec![FnTriple::host(0, 32, FnKey::Fib)], // host-tagged FIB: skipped
        locations: vec![0u8; 4],
        ..Default::default()
    };
    let mut buf = repr.to_bytes(&[]).unwrap();
    let (verdict, stats) = router.process(&mut buf, 0, 0);
    assert_eq!(verdict, Verdict::Forward(vec![1]));
    assert_eq!(stats.fns_executed, 0);
    assert_eq!(stats.skipped_host, 1);
    // The PIT/FIB state is untouched: the op really did not run.
    assert!(router.state().pit.is_empty());
}

/// §3 NDN data-packet rule: "forwards it to the recorded request port
/// (match hit) or discards the packet (match miss)".
#[test]
fn ndn_data_hit_and_miss_behaviour() {
    let name = Name::parse("/n");
    let mut r = DipRouter::new(1, [1; 16]);
    r.state_mut().name_fib.add_route(&name, NextHop::port(9));
    // Miss first.
    let mut miss = ndn::data(&name, 64).to_bytes(b"d").unwrap();
    assert_eq!(r.process(&mut miss, 9, 0).0, Verdict::Drop(DropReason::PitMiss));
    // Then a hit after an interest recorded port 5.
    let mut interest = ndn::interest(&name, 64).to_bytes(&[]).unwrap();
    r.process(&mut interest, 5, 1);
    let mut hit = ndn::data(&name, 64).to_bytes(b"d").unwrap();
    assert_eq!(r.process(&mut hit, 9, 2).0, Verdict::Forward(vec![5]));
}

/// §2.4: "the router should return an FN unsupported message to notify the
/// source through a mechanism similar to ICMP" for participation FNs, and
/// "Otherwise, the router can simply ignore this FN."
#[test]
fn section24_unsupported_fn_policy() {
    let mut limited =
        DipRouter::new(9, [1; 16]).with_registry(FnRegistry::with_keys(&[FnKey::Match32]));
    limited.config_mut().default_port = Some(1);

    // Participation-required (OPT chain member): notify.
    let opt_pkt = DipRepr {
        fns: vec![FnTriple::router(128, 128, FnKey::Parm)],
        locations: vec![0u8; 68],
        ..Default::default()
    };
    let mut buf = opt_pkt.to_bytes(&[]).unwrap();
    assert!(matches!(limited.process(&mut buf, 0, 0).0, Verdict::Notify(_)));

    // Optional unknown FN: ignored.
    let custom_pkt = DipRepr {
        fns: vec![FnTriple::router(0, 8, FnKey::Other(0x7000))],
        locations: vec![0u8; 1],
        ..Default::default()
    };
    let mut buf = custom_pkt.to_bytes(&[]).unwrap();
    let (verdict, stats) = limited.process(&mut buf, 0, 0);
    assert_eq!(verdict, Verdict::Forward(vec![1]));
    assert_eq!(stats.skipped_unsupported, 1);
}

/// §1/§3: the five protocols the paper demonstrates all run through one
/// router with the standard twelve-module registry — the unification claim
/// itself.
#[test]
fn five_protocols_one_registry() {
    use dip::tables::XiaNextHop;
    let secret = [0x42u8; 16];
    let mut router = DipRouter::new(1, secret);
    router.config_mut().default_port = Some(7);
    let name = Name::parse("hotnets.org");
    let st = router.state_mut();
    st.ipv4_fib.add_route(dip::wire::ipv4::Ipv4Addr::new(10, 0, 0, 0), 8, NextHop::port(1));
    st.ipv6_fib.add_route(
        dip::wire::ipv6::Ipv6Addr::new([0xfd00, 0, 0, 0, 0, 0, 0, 0]),
        8,
        NextHop::port(2),
    );
    st.name_fib.add_route(&name, NextHop::port(3));
    st.xia.add_route(XidType::Cid, Xid::derive(b"c"), XiaNextHop::Port(4));

    let session = OptSession::establish([9; 16], &[8; 16], &[secret]);
    let dag = Dag::direct_with_fallback(
        DagNode::sink(XidType::Cid, Xid::derive(b"c")),
        Xid::derive(b"ad"),
        Xid::derive(b"h"),
    )
    .unwrap();

    let packets: Vec<(&str, Vec<u8>, Verdict)> = vec![
        (
            "IPv4/DIP-32",
            ip::dip32_packet(
                dip::wire::ipv4::Ipv4Addr::new(10, 1, 1, 1),
                dip::wire::ipv4::Ipv4Addr::new(1, 1, 1, 1),
                64,
            )
            .to_bytes(&[])
            .unwrap(),
            Verdict::Forward(vec![1]),
        ),
        (
            "IPv6/DIP-128",
            ip::dip128_packet(
                dip::wire::ipv6::Ipv6Addr::new([0xfd00, 0, 0, 0, 0, 0, 0, 1]),
                dip::wire::ipv6::Ipv6Addr::new([0xfe80, 0, 0, 0, 0, 0, 0, 1]),
                64,
            )
            .to_bytes(&[])
            .unwrap(),
            Verdict::Forward(vec![2]),
        ),
        ("NDN", ndn::interest(&name, 64).to_bytes(&[]).unwrap(), Verdict::Forward(vec![3])),
        ("OPT", session.packet(b"x", 1, 64).to_bytes(b"x").unwrap(), Verdict::Forward(vec![7])),
        (
            "XIA",
            dip::protocols::xia::packet(&dag, 64).to_bytes(&[]).unwrap(),
            Verdict::Forward(vec![4]),
        ),
    ];
    for (label, mut buf, expected) in packets {
        let (verdict, _) = router.process(&mut buf, 0, 0);
        assert_eq!(verdict, expected, "{label}");
    }
}

//! Integration tests driving the discrete-event simulator: multi-hop
//! retrieval, caching, fault injection, and control-plane notifications.

use dip::prelude::*;
use dip::sim::engine::{Host, Network};
use dip::sim::topology::{chain, star};
use dip::sim::FaultConfig;
use std::collections::HashMap;

fn catalog(names: &[Name]) -> HashMap<u32, Vec<u8>> {
    names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.compact32(), format!("data-{i}").into_bytes()))
        .collect()
}

#[test]
fn five_hop_chain_retrieval() {
    let name = Name::parse("/deep/content");
    let mut net = Network::new(1);
    let (consumer, routers, _) = chain(
        &mut net,
        5,
        Host::consumer(100),
        Host::producer(200, catalog(std::slice::from_ref(&name))),
        |i| [i as u8 + 1; 16],
        10_000,
    );
    for &r in &routers {
        net.router_mut(r).unwrap().state_mut().name_fib.add_route(&name, NextHop::port(1));
    }
    net.send(consumer, 0, dip::protocols::ndn::interest(&name, 64).to_bytes(&[]).unwrap(), 0);
    net.run();
    assert_eq!(net.host(consumer).unwrap().delivered.len(), 1);
    assert_eq!(net.host(consumer).unwrap().delivered[0].payload, b"data-0");
    // 10 link traversals at 10µs plus processing: at least 100µs.
    assert!(net.host(consumer).unwrap().delivered[0].time >= 100_000);
}

#[test]
fn router_content_store_shortcuts_the_path() {
    let name = Name::parse("/popular");
    let mut net = Network::new(2);
    let (consumer, routers, _) = chain(
        &mut net,
        2,
        Host::consumer(100),
        Host::producer(200, catalog(std::slice::from_ref(&name))),
        |i| [i as u8 + 1; 16],
        10_000,
    );
    for &r in &routers {
        let rt = net.router_mut(r).unwrap();
        rt.state_mut().name_fib.add_route(&name, NextHop::port(1));
        rt.state_mut().enable_content_store(8);
    }
    // First retrieval populates caches on the way back.
    let mk = |tag: u8| dip::protocols::ndn::interest(&name, 64).to_bytes(&[tag]).unwrap();
    net.send(consumer, 0, mk(1), 0);
    net.run();
    assert_eq!(net.host(consumer).unwrap().delivered.len(), 1);
    assert_eq!(net.trace().cache_hits(), 0);

    // Second retrieval (distinct nonce) is served by the first router.
    net.send(consumer, 0, mk(2), net.now() + 1_000_000);
    net.run();
    assert_eq!(net.host(consumer).unwrap().delivered.len(), 2);
    assert_eq!(net.trace().cache_hits(), 1);
    assert_eq!(net.host(consumer).unwrap().delivered[1].payload, b"data-0");
}

#[test]
fn lossy_link_drops_show_in_trace() {
    let name = Name::parse("/x");
    let mut net = Network::new(3);
    let r = net.add_router({
        let mut r = DipRouter::new(1, [1; 16]);
        r.state_mut().name_fib.add_route(&name, NextHop::port(1));
        r
    });
    let consumer = net.add_host(Host::consumer(100));
    let producer = net.add_host(Host::producer(200, catalog(std::slice::from_ref(&name))));
    // 100% loss on the producer side.
    net.connect(consumer, 0, r, 0, 1_000);
    net.connect_with(producer, 0, r, 1, 1_000, 1_000_000_000, FaultConfig::lossy(100.0));
    net.send(consumer, 0, dip::protocols::ndn::interest(&name, 64).to_bytes(&[]).unwrap(), 0);
    net.run();
    assert_eq!(net.host(consumer).unwrap().delivered.len(), 0);
    assert!(net.trace().link_drops() >= 1);
}

#[test]
fn heterogeneous_router_notifies_source_host() {
    // A star with one OPT-incapable core: the host's OPT packet triggers an
    // FN-unsupported control message delivered back to it (§2.4).
    let mut net = Network::new(4);
    let hosts = vec![Host::consumer(100), Host::consumer(101)];
    let (core, ids) = star(&mut net, [9; 16], hosts, 1_000);
    let limited = FnRegistry::with_keys(&[FnKey::Match32, FnKey::Source]);
    *net.router_mut(core).unwrap().registry_mut() = limited;

    let session = OptSession::establish([1; 16], &[2; 16], &[[9; 16]]);
    net.send(ids[0], 0, session.packet(b"x", 1, 64).to_bytes(b"x").unwrap(), 0);
    net.run();

    let msgs = &net.host(ids[0]).unwrap().control_messages;
    assert_eq!(msgs.len(), 1);
    match &msgs[0] {
        dip::core::control::ControlMessage::FnUnsupported { key, node_id, .. } => {
            assert_eq!(*key, FnKey::Parm.to_wire());
            // star() gives its core router node_id 0.
            assert_eq!(*node_id, 0);
        }
        other => panic!("unexpected control message {other:?}"),
    }
}

#[test]
fn star_many_consumers_share_one_producer() {
    let name = Name::parse("/shared");
    let mut net = Network::new(5);
    let consumers: Vec<Host> = (0..4).map(Host::consumer).collect();
    let mut hosts = consumers;
    hosts.push(Host::producer(99, catalog(std::slice::from_ref(&name))));
    let (core, ids) = star(&mut net, [1; 16], hosts, 2_000);
    let producer_port = (ids.len() - 1) as u32;
    net.router_mut(core)
        .unwrap()
        .state_mut()
        .name_fib
        .add_route(&name, NextHop::port(producer_port));

    for (i, id) in ids[..4].iter().enumerate() {
        let interest = dip::protocols::ndn::interest(&name, 64).to_bytes(&[i as u8]).unwrap();
        net.send(*id, 0, interest, i as u64 * 100);
    }
    net.run();
    // PIT aggregation: all four consumers got the data...
    let total: usize = ids[..4].iter().map(|id| net.host(*id).unwrap().delivered.len()).sum();
    assert_eq!(total, 4);
    // ...but the producer answered only once (later interests aggregated).
    let producer_sends = net
        .trace()
        .events()
        .iter()
        .filter(|(_, e)| matches!(e, dip::sim::TraceEvent::Sent { node, .. } if *node == ids[4].0))
        .count();
    assert_eq!(producer_sends, 1);
}

#[test]
fn deterministic_given_a_seed() {
    let run = || {
        let name = Name::parse("/det");
        let mut net = Network::new(77);
        let (consumer, routers, _) = chain(
            &mut net,
            3,
            Host::consumer(1),
            Host::producer(2, catalog(std::slice::from_ref(&name))),
            |i| [i as u8 + 1; 16],
            7_000,
        );
        for &r in &routers {
            net.router_mut(r).unwrap().state_mut().name_fib.add_route(&name, NextHop::port(1));
        }
        for i in 0..10u8 {
            net.send(
                consumer,
                0,
                dip::protocols::ndn::interest(&name, 64).to_bytes(&[i]).unwrap(),
                u64::from(i) * 50_000,
            );
        }
        net.run();
        (net.now(), net.host(consumer).unwrap().delivered.len(), net.trace().events().len())
    };
    assert_eq!(run(), run());
}

//! Integration tests for the `dipcheck` static verifier (ISSUE 1).
//!
//! Three layers of assurance:
//! 1. table-driven: the five paper protocols lint clean (zero false
//!    positives on real programs);
//! 2. table-driven: every seeded-invalid corpus entry is rejected with
//!    its expected diagnostic (detection power);
//! 3. property: any randomly composed chain the verifier accepts
//!    serializes and executes through the real `dip_core::DipRouter`
//!    pipeline without an out-of-bounds `WireError` — the soundness
//!    contract the crate documents.

use dip::prelude::*;
use dip::verify::{invalid_corpus, DiagCode};
use dip_crypto::DetRng;
use dip_wire::ipv4::Ipv4Addr;
use dip_wire::ipv6::Ipv6Addr;

fn opt_session() -> OptSession {
    OptSession::establish([0xaa; 16], &[0xbb; 16], &[[1; 16], [2; 16]])
}

fn paper_protocols() -> Vec<(&'static str, DipRepr)> {
    let name = Name::parse("hotnets.org");
    let session = opt_session();
    vec![
        (
            "ipv4",
            dip::protocols::ip::dip32_packet(
                Ipv4Addr::new(10, 0, 0, 2),
                Ipv4Addr::new(10, 0, 0, 1),
                64,
            ),
        ),
        (
            "ipv6",
            dip::protocols::ip::dip128_packet(
                Ipv6Addr::new([0x2001, 0xdb8, 0, 0, 0, 0, 0, 2]),
                Ipv6Addr::new([0x2001, 0xdb8, 0, 0, 0, 0, 0, 1]),
                64,
            ),
        ),
        ("ndn", dip::protocols::ndn::interest(&name, 64)),
        ("opt", session.packet(b"payload", 7, 64)),
        ("ndn+opt", dip::protocols::ndn_opt::data(&session, &name, b"content", 7, 64)),
    ]
}

#[test]
fn five_paper_protocols_lint_clean() {
    let checker = Checker::new();
    for (label, repr) in paper_protocols() {
        let report = checker.check(&FnProgram::from_repr(&repr));
        assert!(report.is_clean(), "{label}: false positive(s): {report}");
    }
}

#[test]
fn ndn_opt_parallel_variant_also_lints_clean() {
    // The parallel-flag composition exercises the hazard analysis with a
    // sanctioned dynamic-key chain — it must not be a false positive.
    let session = opt_session();
    let repr = dip::protocols::ndn_opt::data_parallel(
        &session,
        &Name::parse("hotnets.org"),
        b"content",
        7,
        64,
    );
    let report = Checker::new().check(&FnProgram::from_repr(&repr));
    assert!(report.is_clean(), "{report}");
}

#[test]
fn corpus_entries_are_rejected_with_expected_diagnostics() {
    let checker = Checker::new();
    let corpus = invalid_corpus();
    assert!(corpus.len() >= 10);
    for case in corpus {
        let report = if case.hop_keys.is_empty() {
            checker.check(&case.program)
        } else {
            let hops: Vec<FnRegistry> =
                case.hop_keys.iter().map(|ks| FnRegistry::with_keys(ks)).collect();
            checker.check_path(&case.program, &hops)
        };
        assert!(report.has_errors(), "{}: accepted ({})", case.name, case.description);
        assert!(
            report.has_code(case.expect),
            "{}: expected {:?}, got {report}",
            case.name,
            case.expect
        );
    }
}

#[test]
fn diagnostics_carry_severity_index_and_span() {
    // The diagnostic format the CLI and docs promise: code string,
    // offending triple index, and the bit span of the violation.
    let program = FnProgram::new(
        vec![
            FnTriple::router(0, 32, FnKey::Match32),
            FnTriple::router(16, 64, FnKey::Source), // 16..80 > 32 bits
        ],
        4,
        false,
    );
    let report = Checker::new().check(&program);
    let d = report
        .errors()
        .find(|d| d.code == DiagCode::FieldOutOfBounds)
        .expect("out-of-bounds diagnostic");
    assert_eq!(d.triple, Some(1));
    assert_eq!(d.span, Some((16, 80)));
    let rendered = format!("{d}");
    assert!(rendered.contains("field-out-of-bounds"), "{rendered}");
    assert!(rendered.contains("fn#1"), "{rendered}");
}

/// A menu of operations at their canonical field widths — what a real
/// (if randomly scrambled) host composition draws from.
fn arb_triple(r: &mut DetRng) -> FnTriple {
    let loc = (r.next_u32() % 1600) as u16;
    match r.gen_index(8) {
        0 => FnTriple::router(loc, 32, FnKey::Match32),
        1 => FnTriple::router(loc, 128, FnKey::Match128),
        2 => FnTriple::router(loc, if r.gen_bool(0.5) { 32 } else { 128 }, FnKey::Source),
        3 => FnTriple::router(loc, 32, FnKey::Pit),
        4 => FnTriple::router(loc, 128, FnKey::Parm),
        5 => FnTriple::router(loc, 8 * (1 + (r.next_u32() % 64) as u16), FnKey::Mac),
        6 => FnTriple::router(loc, 128, FnKey::Mark),
        7 => FnTriple::host(loc, 8 * (1 + (r.next_u32() % 68) as u16), FnKey::Ver),
        _ => unreachable!(),
    }
}

#[test]
fn accepted_chains_execute_without_out_of_bounds() {
    let mut r = DetRng::seed_from_u64(0xd1c);
    let checker = Checker::new();
    let mut accepted = 0usize;

    for case in 0..400 {
        let fns: Vec<FnTriple> = (0..1 + r.gen_index(5)).map(|_| arb_triple(&mut r)).collect();
        let loc_len = r.gen_index(201); // 0..=200 bytes
        let parallel = r.gen_bool(0.3);
        let program = FnProgram::new(fns.clone(), loc_len, parallel);
        if !checker.check(&program).is_clean() {
            continue; // rejected statically — nothing to prove
        }
        accepted += 1;

        // 1. Serialization never reports an out-of-bounds WireError.
        let repr = DipRepr {
            parallel,
            fns: fns.clone(),
            locations: vec![0u8; loc_len],
            ..Default::default()
        };
        let bytes = repr
            .to_bytes(b"prop")
            .unwrap_or_else(|e| panic!("case {case}: accepted chain failed to emit: {e:?}"));

        // 2. Every field access the router will perform is in bounds.
        let pkt = DipPacket::new_checked(&bytes[..])
            .unwrap_or_else(|e| panic!("case {case}: accepted chain unparseable: {e:?}"));
        for t in &fns {
            pkt.target_field(t).unwrap_or_else(|e| panic!("case {case}: field read OOB: {e:?}"));
        }

        // 3. The Algorithm-1 pipeline runs to a verdict without a
        //    malformed-field drop (NoRoute/pit verdicts are fine — the
        //    contract is about construction, not table contents).
        let mut router = DipRouter::new(1, [7; 16]);
        router.config_mut().default_port = Some(1);
        router.state_mut().ipv4_fib.add_route(
            Ipv4Addr::new(0, 0, 0, 0),
            0,
            dip::tables::fib::NextHop::port(1),
        );
        let mut buf = bytes.clone();
        let (verdict, _) = router.process(&mut buf, 0, 0);
        assert_ne!(
            verdict,
            Verdict::Drop(DropReason::MalformedField),
            "case {case}: accepted chain {fns:?} (loc {loc_len}B) dropped as malformed"
        );
    }

    assert!(accepted >= 25, "property vacuous: only {accepted} of 400 chains accepted");
}

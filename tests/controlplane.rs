//! Control-plane integration: a six-node topology converges from nothing,
//! carries all five protocol realizations, loses its primary link
//! mid-run, detects the failure over HELLO dead intervals, refloods,
//! reruns SPF, and resumes traffic on the alternate path — with the
//! network-wide accounting identity intact throughout.
//!
//! Topology (ids in parentheses are control-plane node ids):
//!
//! ```text
//!   h ── r0(1) ── r1(2) ── p
//!          │        │
//!        r2(3) ── r3(4)
//! ```
//!
//! Primary path h→r0→r1→p (cost 2); after the r0–r1 link dies the only
//! path is h→r0→r2→r3→r1→p (cost 4). All announcements originate at r1
//! (the producer's attachment point) and reach every other router purely
//! via LSA flooding — nothing is installed by hand.

use dip::controlplane::{AgentConfig, ControlAgent, ControlNode};
use dip::prelude::*;
use dip::protocols::opt::opt_triples;
use dip::protocols::{ip, ndn, xia};
use dip::sim::engine::{Host, Network, NodeId};
use dip::tables::XiaNextHop;
use dip::wire::ipv4::Ipv4Addr;
use dip::wire::ipv6::Ipv6Addr;
use dip::wire::opt::OPT_BLOCK_LEN;
use std::collections::HashMap;

fn control_router(id: u64, ports: Vec<u32>) -> ControlNode<DipRouter> {
    ControlNode::new(
        DipRouter::new(id, [id as u8; 16]),
        ControlAgent::new(id, ports, AgentConfig::default()),
    )
}

/// An OPT packet that is actually *routed*: the usual four OPT triples
/// plus a `Match32` over an IPv4 destination appended after the OPT
/// block, so the path is chosen by the control-plane-installed FIB
/// rather than a static default port.
fn routed_opt(session: &OptSession, payload: &[u8], timestamp: u32, dst: Ipv4Addr) -> DipRepr {
    let block = session.initial_block(payload, timestamp);
    let mut locations = block.to_bytes().to_vec();
    locations.extend_from_slice(&dst.0);
    let mut fns = opt_triples(0);
    fns.push(FnTriple::router((OPT_BLOCK_LEN * 8) as u16, 32, FnKey::Match32));
    DipRepr { next_header: 0, hop_limit: 64, parallel: false, fns, locations }
}

fn agent_of(net: &mut Network, id: NodeId) -> &ControlNode<DipRouter> {
    net.router_node_mut(id).unwrap().as_any_mut().downcast_mut::<ControlNode<DipRouter>>().unwrap()
}

#[test]
fn six_node_reconvergence_reroutes_all_five_protocols() {
    let name_one = Name::parse("/ctrl/content/one");
    let name_two = Name::parse("/ctrl/content/two");
    let movie = Xid::derive(b"ctrl-movie");
    let dag = Dag::direct_with_fallback(
        DagNode::sink(XidType::Cid, movie),
        Xid::derive(b"ctrl-ad"),
        Xid::derive(b"ctrl-hid"),
    )
    .unwrap();
    let dst4 = Ipv4Addr::new(10, 0, 0, 7);
    let dst6 = Ipv6Addr::new([0xfdaa, 0, 0, 0, 0, 0, 0, 9]);
    let src6 = Ipv6Addr::new([0xfdbb, 0, 0, 0, 0, 0, 0, 1]);

    let mut net = Network::new(42);
    let r0 = net.add_router_node(Box::new(control_router(1, vec![0, 1, 2])));
    let r1 = {
        let mut n = control_router(2, vec![0, 1, 2]);
        // r1 fronts the producer on its port 1 and announces every
        // protocol's reachability; the rest of the network learns these
        // only through flooding.
        n.agent_mut().announce_v4(Ipv4Addr::new(10, 0, 0, 0), 8, 1);
        n.agent_mut().announce_v6(Ipv6Addr::new([0xfdaa, 0, 0, 0, 0, 0, 0, 0]), 16, 1);
        n.agent_mut().announce_name(name_one.clone(), 1);
        n.agent_mut().announce_name(name_two.clone(), 1);
        n.agent_mut().announce_xia(XidType::Cid, movie, XiaNextHop::Port(1));
        net.add_router_node(Box::new(n))
    };
    let r2 = net.add_router_node(Box::new(control_router(3, vec![0, 1])));
    let r3 = net.add_router_node(Box::new(control_router(4, vec![0, 1])));

    let h = net.add_host(Host::consumer(100));
    let mut contents = HashMap::new();
    contents.insert(name_one.compact32(), b"first copy".to_vec());
    contents.insert(name_two.compact32(), b"second copy".to_vec());
    let p = net.add_host(Host::producer(200, contents));

    net.connect(h, 0, r0, 0, 1_000);
    net.connect(r0, 1, r1, 0, 1_000);
    net.connect(r0, 2, r2, 0, 1_000);
    net.connect(r1, 1, p, 0, 1_000);
    net.connect(r1, 2, r3, 1, 1_000);
    net.connect(r2, 1, r3, 0, 1_000);

    // OPT binds the exact router sequence: one session per path.
    let secret = [0x55; 16];
    let session_a = OptSession::establish([0xa1; 16], &secret, &[[1; 16], [2; 16]]);
    let session_b =
        OptSession::establish([0xb2; 16], &secret, &[[1; 16], [3; 16], [4; 16], [2; 16]]);

    // ---- Segment 1: cold start, converge, run traffic on the primary path.
    for r in [r0, r1, r2, r3] {
        net.schedule_control_ticks(r, 0, 50_000, 900_000);
    }
    net.host_mut(p).unwrap().host_ctx = session_a.host_context();

    let opt_payload = b"opt phase one".to_vec();
    net.send(
        h,
        0,
        ip::dip32_packet(dst4, Ipv4Addr::new(192, 168, 0, 1), 64)
            .to_bytes(b"v4 phase one")
            .unwrap(),
        500_000,
    );
    net.send(h, 0, ip::dip128_packet(dst6, src6, 64).to_bytes(b"v6 phase one").unwrap(), 500_000);
    net.send(h, 0, ndn::interest(&name_one, 64).to_bytes(&[]).unwrap(), 500_000);
    net.send(
        h,
        0,
        routed_opt(&session_a, &opt_payload, 1, dst4).to_bytes(&opt_payload).unwrap(),
        500_000,
    );
    net.send(h, 0, xia::packet(&dag, 64).to_bytes(b"xia phase one").unwrap(), 500_000);
    net.run();

    {
        let delivered = &net.host(p).unwrap().delivered;
        assert_eq!(delivered.len(), 4, "v4, v6, OPT, XIA reach the producer");
        assert!(
            delivered.iter().any(|d| d.payload == b"opt phase one" && d.verified),
            "session A verifies over the primary path"
        );
        assert_eq!(net.host(h).unwrap().delivered.len(), 1, "NDN data returns");
        assert_eq!(net.host(h).unwrap().delivered[0].payload, b"first copy");
    }
    {
        let cn0 = agent_of(&mut net, r0);
        assert_eq!(cn0.agent().neighbors(), vec![(1, 2), (2, 3)], "full adjacency at r0");
        assert_eq!(cn0.agent().lsdb_len(), 4, "every origin flooded to r0");
    }
    let before = net.metrics_snapshot();
    assert_eq!(
        before.sum_where("dip_packets_total", &[("node", "2"), ("outcome", "forwarded")]),
        0,
        "r2 is idle while the primary path is up"
    );

    // ---- Segment 2: kill the primary link, let HELLO timeouts + LSA
    // floods reconverge, then rerun all five protocols.
    net.link_down(r0, 1);
    for r in [r0, r1, r2, r3] {
        net.schedule_control_ticks(r, 1_000_000, 50_000, 2_200_000);
    }
    net.host_mut(p).unwrap().host_ctx = session_b.host_context();

    let opt_payload = b"opt phase two".to_vec();
    net.send(
        h,
        0,
        ip::dip32_packet(dst4, Ipv4Addr::new(192, 168, 0, 1), 64)
            .to_bytes(b"v4 phase two")
            .unwrap(),
        2_500_000,
    );
    net.send(h, 0, ip::dip128_packet(dst6, src6, 64).to_bytes(b"v6 phase two").unwrap(), 2_500_000);
    net.send(h, 0, ndn::interest(&name_two, 64).to_bytes(&[]).unwrap(), 2_500_000);
    net.send(
        h,
        0,
        routed_opt(&session_b, &opt_payload, 2, dst4).to_bytes(&opt_payload).unwrap(),
        2_500_000,
    );
    net.send(h, 0, xia::packet(&dag, 64).to_bytes(b"xia phase two").unwrap(), 2_500_000);
    net.run();

    {
        let delivered = &net.host(p).unwrap().delivered;
        assert_eq!(delivered.len(), 8, "all four direct deliveries repeat post-failure");
        assert!(
            delivered.iter().any(|d| d.payload == b"opt phase two" && d.verified),
            "session B verifies over the r0→r2→r3→r1 detour"
        );
        assert_eq!(net.host(h).unwrap().delivered.len(), 2, "NDN data returns post-failure");
        assert!(net.host(h).unwrap().delivered.iter().any(|d| d.payload == b"second copy"));
    }
    {
        let cn0 = agent_of(&mut net, r0);
        assert_eq!(cn0.agent().neighbors(), vec![(2, 3)], "dead interval tore down r0–r1");
    }

    let snap = net.metrics_snapshot();
    // The detour actually carried the rerouted traffic.
    assert!(
        snap.sum_where("dip_packets_total", &[("node", "2"), ("outcome", "forwarded")]) > 0,
        "r2 forwards on the alternate path"
    );
    assert!(
        snap.sum_where("dip_packets_total", &[("node", "3"), ("outcome", "forwarded")]) > 0,
        "r3 forwards on the alternate path"
    );
    // Accounting identity over the whole run, failure included: every
    // packet put on a link was either lost to the downed link (counted)
    // or accounted exactly once by its receiver.
    let accounted = snap.get("dip_packets_total");
    let sent = snap.get("dip_node_sent_total");
    let link_dropped = snap.get("dip_link_dropped_total");
    assert_eq!(accounted, sent - link_dropped, "accounting identity");
    assert!(link_dropped > 0, "HELLOs on the severed link are counted drops");
    // Control-plane telemetry saw the whole story.
    assert!(snap.get("dip_ctrl_hello_total") > 0);
    assert!(snap.get("dip_ctrl_lsa_flood_total") > 0);
    assert!(snap.get("dip_ctrl_spf_runs_total") >= 8, "every node republished after the failure");
    assert!(snap.get("dip_ctrl_convergence_ns_count") > 0, "convergence histogram recorded");
    assert!(snap.get("dip_ctrl_route_epoch") >= 8, "route epochs advanced on every node");
}

/// The same failure scripted through the event queue instead of between
/// `run()` segments: `schedule_link_down` plus a single tick horizon.
#[test]
fn scheduled_link_down_reconverges_within_one_run() {
    let mut net = Network::new(7);
    let r0 = net.add_router_node(Box::new(control_router(1, vec![0, 1, 2])));
    let r1 = {
        let mut n = control_router(2, vec![0, 1, 2]);
        n.agent_mut().announce_v4(Ipv4Addr::new(10, 0, 0, 0), 8, 1);
        net.add_router_node(Box::new(n))
    };
    let r2 = net.add_router_node(Box::new(control_router(3, vec![0, 1])));
    let r3 = net.add_router_node(Box::new(control_router(4, vec![0, 1])));
    let h = net.add_host(Host::consumer(100));
    let p = net.add_host(Host::consumer(200));
    net.connect(h, 0, r0, 0, 1_000);
    net.connect(r0, 1, r1, 0, 1_000);
    net.connect(r0, 2, r2, 0, 1_000);
    net.connect(r1, 1, p, 0, 1_000);
    net.connect(r1, 2, r3, 1, 1_000);
    net.connect(r2, 1, r3, 0, 1_000);

    for r in [r0, r1, r2, r3] {
        net.schedule_control_ticks(r, 0, 50_000, 2_200_000);
    }
    net.schedule_link_down(1_000_000, r0, 1);
    let pkt = ip::dip32_packet(dst(), Ipv4Addr::new(192, 168, 0, 1), 64).to_bytes(b"x").unwrap();
    net.send(h, 0, pkt, 2_000_000);
    net.run();

    assert_eq!(net.host(p).unwrap().delivered.len(), 1, "traffic rerouted within the same run");
    let snap = net.metrics_snapshot();
    assert!(
        snap.sum_where("dip_packets_total", &[("node", "2"), ("outcome", "forwarded")]) > 0,
        "the packet went via r2"
    );
    assert_eq!(
        snap.get("dip_packets_total"),
        snap.get("dip_node_sent_total") - snap.get("dip_link_dropped_total"),
        "accounting identity"
    );
}

fn dst() -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, 7)
}

//! The dipopt equivalence gate: optimized execution must be
//! byte-indistinguishable from interpreted execution.
//!
//! For each of the six protocol programs (DIP-32, DIP-128, NDN, OPT, XIA,
//! NDN+OPT), a seeded workload trace runs through two identically
//! provisioned routers — one interpreting chains, one executing the
//! dipopt-compiled plans — and [`dip::core::differential_check`] compares,
//! per packet: the verdict, the full post-processing packet bytes, and the
//! router-state fingerprint (FIB/PIT/content-store effects). A protocol's
//! gate only counts if at least one packet actually exercised an optimized
//! plan.
//!
//! The suite also pins the negative space: every admissible-but-illegal
//! program in [`dip::verify::optimization_corpus`] must run with *zero*
//! optimized plans under the flag, and the facts `dipstat`/the dataplane
//! compute for the real XIA wire packet must contain the hot-path rewrite
//! (the fix behind the XIA MST outlier).

use dip::core::differential_check;
use dip::prelude::*;
use dip::verify::{analyze, optimization_corpus, Rewrite};
use dip::workload::{Mix, TrafficClass, WorkloadSpec};

const PACKETS_PER_CLASS: usize = 96;

fn spec(class: TrafficClass, seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        seed,
        mix: Mix::single(class),
        catalog_size: 64,
        table_size: 512,
        pit_preseed: 256,
        ..Default::default()
    }
}

/// Classes whose chains dipopt provably rewrites (fusion, hoist, or parse
/// elimination). NDN is a single-hop chain with nothing to optimize — its
/// gate instead pins that the optimizer leaves it alone.
fn expects_optimization(class: TrafficClass) -> bool {
    !matches!(class, TrafficClass::Ndn)
}

#[test]
fn all_six_protocol_programs_are_equivalent_under_optimization() {
    for (i, &class) in TrafficClass::ALL.iter().enumerate() {
        let spec = spec(class, 0xe9 + i as u64);
        let trace = spec.generate(1_000_000, PACKETS_PER_CLASS);
        assert_eq!(trace.packets.len(), PACKETS_PER_CLASS);
        let packets = trace.packets.iter().map(|p| (p.bytes.clone(), 7, p.at_ns));
        let report = differential_check(spec.build_router(1), spec.build_router(1), packets)
            .unwrap_or_else(|e| panic!("{}: optimized run diverged: {e}", class.label()));
        assert_eq!(report.packets, PACKETS_PER_CLASS);
        if expects_optimization(class) {
            assert!(
                report.optimized_verdicts > 0,
                "{}: no packet exercised an optimized plan",
                class.label()
            );
        } else {
            assert_eq!(
                report.optimized_verdicts,
                0,
                "{}: single-hop chain must not be rewritten",
                class.label()
            );
        }
    }
}

#[test]
fn corpus_programs_run_unoptimized_and_equivalent() {
    // The must-not-optimize corpus: equivalence still holds trivially —
    // because the optimizer provably bailed and both sides interpret.
    for case in optimization_corpus() {
        let report = dip::core::differential_smoke(
            &case.program.fns,
            case.program.loc_len,
            case.program.parallel,
            &FnRegistry::standard(),
            0xc0,
        )
        .unwrap_or_else(|e| panic!("{}: diverged: {e}", case.name));
        assert_eq!(report.optimized_verdicts, 0, "{} must never be optimized", case.name);
        let facts = analyze(&case.program, &FnRegistry::standard());
        assert!(facts.rewrites.is_empty(), "{}: unexpected rewrites", case.name);
        assert!(facts.bailed(case.expect), "{}: missing expected bail", case.name);
    }
}

#[test]
fn the_real_xia_wire_packet_gets_the_hot_path_rewrite() {
    // The XIA MST outlier fix: the standalone DAG parse ahead of F_intent
    // is eliminated, so the wire packet's program must carry exactly that
    // rewrite when analyzed from parsed bytes (the dataplane's view).
    let dag = Dag::direct_with_fallback(
        DagNode::sink(XidType::Cid, Xid::derive(b"gate-content")),
        Xid::derive(b"gate-ad"),
        Xid::derive(b"gate-hid"),
    )
    .unwrap();
    let bytes = dip::protocols::xia::packet(&dag, 64).to_bytes(&[]).unwrap();
    let parsed = dip::core::parse_packet(&bytes).expect("xia packet parses");
    let program = FnProgram::new(parsed.triples.clone(), parsed.loc_len, parsed.parallel);
    let facts = analyze(&program, &FnRegistry::standard());
    assert!(
        facts
            .rewrites
            .iter()
            .any(|r| matches!(r, Rewrite::EliminateRedundantParse { parse: 0, into: 1, .. })),
        "expected the dag-parse elimination, got {:?}",
        facts.rewrites
    );
    assert_eq!(facts.ops_eliminated(), 1);
}

//! Security-property integration tests: the OPT threat model and the §2.4
//! defenses, exercised through the full pipeline.

use dip::fnops::ops::pass::{issue_label, PASS_FIELD_BITS};
use dip::prelude::*;
use dip::protocols::ndn;

fn one_hop(session: &OptSession, secret: [u8; 16], payload: &[u8]) -> Vec<u8> {
    let mut router = DipRouter::new(0, secret);
    router.config_mut().default_port = Some(1);
    let mut buf = session.packet(payload, 7, 64).to_bytes(payload).unwrap();
    let (v, _) = router.process(&mut buf, 0, 0);
    assert!(matches!(v, Verdict::Forward(_)));
    buf
}

fn verify(buf: &mut [u8], session: &OptSession) -> Result<bool, DropReason> {
    let mut host_state = RouterState::new(99, [0; 16]);
    deliver(buf, &session.host_context(), &mut host_state, &FnRegistry::standard(), 0)
        .map(|d| d.verified)
}

#[test]
fn honest_traffic_verifies() {
    let secret = [3; 16];
    let session = OptSession::establish([1; 16], &[2; 16], &[secret]);
    let mut buf = one_hop(&session, secret, b"ok");
    assert_eq!(verify(&mut buf, &session), Ok(true));
}

#[test]
fn every_single_bitflip_in_the_opt_block_is_detected() {
    // Flip each bit of the 68-byte OPT block in turn: verification must
    // fail for all of them (the whole block is either MAC'd or is the tag
    // itself).
    let secret = [3; 16];
    let session = OptSession::establish([1; 16], &[2; 16], &[secret]);
    let reference = one_hop(&session, secret, b"payload");
    let header_start = 6 + 4 * 6; // basic + 4 triples -> locations
    for byte in 0..68 {
        for bit in 0..8 {
            let mut buf = reference.clone();
            buf[header_start + byte] ^= 1 << bit;
            let r = verify(&mut buf, &session);
            assert_ne!(r, Ok(true), "bit {bit} of block byte {byte} not detected");
        }
    }
}

#[test]
fn source_spoofing_is_detected() {
    // An attacker who does not know the source key cannot fabricate a
    // packet that verifies, even with a cooperating (honest) router.
    let secret = [3; 16];
    let session = OptSession::establish([1; 16], &[2; 16], &[secret]);
    let attacker_session = OptSession::establish([1; 16], &[0xEE; 16], &[secret]);
    // Attacker builds with their own guessed source key...
    let mut buf = one_hop(&attacker_session, secret, b"forged");
    // ...and the real destination verifies with the negotiated one.
    assert_eq!(verify(&mut buf, &session), Err(DropReason::AuthenticationFailed));
}

#[test]
fn replay_to_a_different_session_fails() {
    let secret = [3; 16];
    let s1 = OptSession::establish([1; 16], &[2; 16], &[secret]);
    let s2 = OptSession::establish([9; 16], &[2; 16], &[secret]);
    let mut buf = one_hop(&s1, secret, b"replayed");
    assert_eq!(verify(&mut buf, &s2), Err(DropReason::AuthenticationFailed));
}

#[test]
fn wrong_cipher_configuration_fails_closed() {
    use dip::fnops::context::MacChoice;
    let secret = [3; 16];
    let session = OptSession::establish([1; 16], &[2; 16], &[secret]);
    // Router MACs with AES while the session layer (and host) use 2EM:
    // heterogeneous cipher config must fail verification, not silently pass.
    let mut router = DipRouter::new(0, secret);
    router.config_mut().default_port = Some(1);
    router.state_mut().mac_choice = MacChoice::Aes;
    let mut buf = session.packet(b"x", 7, 64).to_bytes(b"x").unwrap();
    router.process(&mut buf, 0, 0);
    assert_eq!(verify(&mut buf, &session), Err(DropReason::AuthenticationFailed));
}

#[test]
fn cache_poisoning_blocked_by_dynamic_policy() {
    let name = Name::parse("/target");
    let combo = DipRepr {
        fns: vec![FnTriple::router(0, 32, FnKey::Fib), FnTriple::router(0, 32, FnKey::Pit)],
        locations: name.compact32().to_be_bytes().to_vec(),
        ..Default::default()
    };

    let mut r = DipRouter::new(1, [7; 16]);
    r.state_mut().enable_content_store(16);
    r.state_mut().name_fib.add_route(&name, NextHop::port(9));

    // Undefended: poisoned.
    let mut pkt = combo.to_bytes(b"EVIL").unwrap();
    r.process(&mut pkt, 2, 0);
    assert!(r.state().content_store.as_ref().unwrap().peek(&name.compact32()).is_some());

    // Operator flips the policy at runtime and purges.
    r.state_mut().require_pass_for_cache = true;
    r.state_mut().content_store.as_mut().unwrap().clear();
    let mut pkt = combo.to_bytes(b"EVIL AGAIN").unwrap();
    r.process(&mut pkt, 2, 10);
    assert!(r.state().content_store.as_ref().unwrap().peek(&name.compact32()).is_none());
}

#[test]
fn pass_labels_gate_caching_per_source() {
    let name = Name::parse("/n");
    let mut r = DipRouter::new(1, [7; 16]);
    r.state_mut().enable_content_store(16);
    r.state_mut().require_pass_for_cache = true;
    r.state_mut().name_fib.add_route(&name, NextHop::port(9));
    let as_secret = r.state().as_secret;

    let make_data = |label: [u8; 16]| {
        let mut locations = name.compact32().to_be_bytes().to_vec();
        locations.extend_from_slice(&[0x0A; 16]);
        locations.extend_from_slice(&label);
        DipRepr {
            fns: vec![
                FnTriple::router(32, PASS_FIELD_BITS, FnKey::Pass),
                FnTriple::router(0, 32, FnKey::Pit),
            ],
            locations,
            ..Default::default()
        }
        .to_bytes(b"data")
        .unwrap()
    };

    // Forged label: dropped before the PIT op even runs.
    let mut interest = ndn::interest(&name, 64).to_bytes(&[]).unwrap();
    r.process(&mut interest, 3, 0);
    let mut forged = make_data([0xFF; 16]);
    let (v, _) = r.process(&mut forged, 9, 1);
    assert_eq!(v, Verdict::Drop(DropReason::BadSourceLabel));
    // The PIT entry is still pending (the drop happened first).
    assert!(r.state().pit.contains(&name.compact32(), 2));

    // Valid label: delivered and cached.
    let mut valid = make_data(issue_label(&as_secret, &[0x0A; 16]));
    let (v, _) = r.process(&mut valid, 9, 3);
    assert_eq!(v, Verdict::Forward(vec![3]));
    assert!(r.state().content_store.as_ref().unwrap().peek(&name.compact32()).is_some());
}

#[test]
fn hop_limit_prevents_forwarding_loops() {
    // Two routers pointing at each other: the packet must die, not orbit.
    let name = Name::parse("/loop");
    let mut a = DipRouter::new(1, [1; 16]);
    let mut b = DipRouter::new(2, [2; 16]);
    a.state_mut().ipv4_fib.add_route(
        dip_wire::ipv4::Ipv4Addr::new(10, 0, 0, 0),
        8,
        NextHop::port(1),
    );
    b.state_mut().ipv4_fib.add_route(
        dip_wire::ipv4::Ipv4Addr::new(10, 0, 0, 0),
        8,
        NextHop::port(1),
    );
    let _ = name;
    let mut buf = dip::protocols::ip::dip32_packet(
        dip_wire::ipv4::Ipv4Addr::new(10, 0, 0, 1),
        dip_wire::ipv4::Ipv4Addr::new(11, 0, 0, 1),
        8, // small hop limit
    )
    .to_bytes(&[])
    .unwrap();
    let mut hops = 0;
    loop {
        let (v, _) =
            if hops % 2 == 0 { a.process(&mut buf, 0, 0) } else { b.process(&mut buf, 0, 0) };
        match v {
            Verdict::Forward(_) => hops += 1,
            Verdict::Drop(DropReason::HopLimitExceeded) => break,
            other => panic!("unexpected {other:?}"),
        }
        assert!(hops < 100, "loop not terminated");
    }
    assert_eq!(hops, 8);
}

#[test]
fn interest_loop_suppressed_by_nonce() {
    // The same interest bytes visiting the same router twice (a routing
    // loop) are dropped the second time.
    let name = Name::parse("/n");
    let mut r = DipRouter::new(1, [1; 16]);
    r.state_mut().name_fib.add_route(&name, NextHop::port(1));
    let template = ndn::interest(&name, 64).to_bytes(b"same-request").unwrap();
    let mut first = template.clone();
    assert!(matches!(r.process(&mut first, 0, 0).0, Verdict::Forward(_)));
    let mut second = template.clone();
    assert_eq!(r.process(&mut second, 2, 1).0, Verdict::Drop(DropReason::DuplicateInterest));
}

//! Adversarial-input regression: no packet-reachable bytes may panic the
//! router, and the telemetry registry must account for every mangled
//! packet exactly once.
//!
//! Three mangling families over valid packets of all five protocols:
//! truncation at every length, deterministic bit flips at every byte, and
//! pure random noise. Everything goes through both the single
//! [`DipRouter`] (metrics attached) and the threaded [`Dataplane`] — the
//! paths satellite 3 hardened (`field_to_names` short-field guard, typed
//! drops instead of `unwrap`).

use dip::controlplane::{agent::control_packet, AgentConfig, ControlAgent, ControlNode};
use dip::core::control::{Announcements, ControlMessage, Lsa, LsaLink};
use dip::crypto::DetRng;
use dip::dataplane::{Backpressure, Dataplane, DataplaneConfig};
use dip::prelude::*;
use dip::protocols::{ip, ndn, xia};
use dip::tables::XiaNextHop;
use dip::telemetry::Registry;
use dip::wire::ipv4::Ipv4Addr;
use dip::wire::ipv6::Ipv6Addr;

/// A router with routes in every table, so mangled packets reach deep
/// into each op before failing.
fn loaded_router(node: u64) -> DipRouter {
    let mut r = DipRouter::new(node, [0x5a; 16]);
    r.state_mut().ipv4_fib.add_route(Ipv4Addr::new(10, 0, 0, 0), 8, NextHop::port(1));
    r.state_mut().ipv6_fib.add_route(
        Ipv6Addr::new([0xfdaa, 0, 0, 0, 0, 0, 0, 0]),
        16,
        NextHop::port(2),
    );
    r.state_mut().enable_content_store(64);
    let name = Name::parse("/adv/content");
    r.state_mut().name_fib.add_route(&name, NextHop::port(3));
    let ad = Xid::derive(b"adv-ad");
    r.state_mut().xia.add_route(XidType::Ad, ad, XiaNextHop::Port(4));
    r
}

/// One valid packet per protocol family.
fn seed_packets() -> Vec<Vec<u8>> {
    let name = Name::parse("/adv/content");
    let ad = Xid::derive(b"adv-ad");
    let hid = Xid::derive(b"adv-hid");
    let cid = Xid::derive(b"adv-cid");
    let dag = Dag::direct_with_fallback(DagNode::sink(XidType::Cid, cid), ad, hid).unwrap();
    vec![
        ip::dip32_packet(Ipv4Addr::new(10, 1, 2, 3), Ipv4Addr::new(1, 1, 1, 1), 64)
            .to_bytes(b"payload")
            .unwrap(),
        ip::dip128_packet(
            Ipv6Addr::new([0xfdaa, 0, 0, 0, 0, 0, 0, 2]),
            Ipv6Addr::new([0xfdcc, 0, 0, 0, 0, 0, 0, 1]),
            64,
        )
        .to_bytes(b"payload")
        .unwrap(),
        ndn::interest(&name, 64).to_bytes(&[]).unwrap(),
        ndn::data(&name, 64).to_bytes(&name.compact32().to_be_bytes()).unwrap(),
        xia::packet(&dag, 64).to_bytes(b"stream").unwrap(),
    ]
}

/// Every truncation, every single-byte bit flip, and a batch of random
/// noise, for every seed packet.
fn mangled_corpus() -> Vec<Vec<u8>> {
    let mut corpus = Vec::new();
    let mut rng = DetRng::seed_from_u64(0xadde7);
    for seed in seed_packets() {
        for len in 0..seed.len() {
            corpus.push(seed[..len].to_vec());
        }
        for pos in 0..seed.len() {
            let mut flipped = seed.clone();
            flipped[pos] ^= 1 << (pos % 8);
            corpus.push(flipped);
        }
        corpus.push(seed);
    }
    for _ in 0..200 {
        let len = rng.gen_index(96);
        corpus.push((0..len).map(|_| rng.gen_index(256) as u8).collect());
    }
    corpus
}

#[test]
fn single_router_survives_and_accounts_for_mangled_packets() {
    let registry = Registry::new();
    let mut router = loaded_router(0);
    router.attach_metrics(&registry, &[("node", "0")]);
    let corpus = mangled_corpus();
    for (i, pkt) in corpus.iter().enumerate() {
        let mut buf = pkt.clone();
        // Must not panic, whatever the bytes.
        let _ = router.process(&mut buf, (i % 5) as u32, i as u64);
    }
    let snap = registry.snapshot();
    assert_eq!(
        snap.get("dip_router_verdicts_total"),
        corpus.len() as u64,
        "every mangled packet gets exactly one verdict"
    );
}

/// One valid wire packet per control-message type, with the LSA carrying
/// announcements in every table so mangled copies reach every decode arm.
fn control_seed_packets() -> Vec<Vec<u8>> {
    let lsa = Lsa {
        origin: 7,
        seq: 3,
        age: 1,
        links: vec![LsaLink { neighbor: 8, cost: 1 }, LsaLink { neighbor: 9, cost: 4 }],
        announce: Announcements {
            v4: vec![(Ipv4Addr::new(10, 0, 0, 0), 8, 1)],
            v6: vec![(Ipv6Addr::new([0xfdaa, 0, 0, 0, 0, 0, 0, 0]), 16, 2)],
            names: vec![(Name::parse("/adv/ctrl"), 3)],
            xia: vec![(XidType::Cid, Xid::derive(b"adv-ctrl"), XiaNextHop::Port(4))],
        },
    };
    vec![
        control_packet(&ControlMessage::Hello { node_id: 77 }),
        control_packet(&ControlMessage::LinkStateAdvertisement(lsa)),
        control_packet(&ControlMessage::LsaAck { origin: 7, seq: 3 }),
    ]
}

#[test]
fn truncated_control_payloads_error_and_never_panic() {
    for msg in [ControlMessage::Hello { node_id: 77 }, ControlMessage::LsaAck { origin: 7, seq: 3 }]
    {
        let encoded = msg.encode();
        for len in 0..encoded.len() {
            assert!(
                ControlMessage::decode(&encoded[..len]).is_err(),
                "truncation to {len} bytes must be a wire error"
            );
        }
        // Bit flips must decode to *something* (Ok or Err) without panicking.
        for pos in 0..encoded.len() {
            let mut flipped = encoded.clone();
            flipped[pos] ^= 1 << (pos % 8);
            let _ = ControlMessage::decode(&flipped);
        }
    }
}

#[test]
fn control_node_survives_and_accounts_for_mangled_control_packets() {
    // Mangle the control seeds exactly like the dataplane corpus:
    // truncation at every length, a bit flip at every byte.
    let mut corpus = Vec::new();
    for seed in control_seed_packets() {
        for len in 0..seed.len() {
            corpus.push(seed[..len].to_vec());
        }
        for pos in 0..seed.len() {
            let mut flipped = seed.clone();
            flipped[pos] ^= 1 << (pos % 8);
            corpus.push(flipped);
        }
        corpus.push(seed);
    }

    // Drive everything through the simulator so the per-hop outcome
    // accounting sees each packet exactly once.
    let mut net = dip::sim::engine::Network::new(0xadc);
    let node =
        ControlNode::new(loaded_router(0), ControlAgent::new(1, vec![0], AgentConfig::default()));
    let r0 = net.add_router_node(Box::new(node));
    let h = net.add_host(dip::sim::engine::Host::consumer(100));
    net.connect(h, 0, r0, 0, 1_000);
    for (i, pkt) in corpus.iter().enumerate() {
        net.send(h, 0, pkt.clone(), i as u64 * 1_000);
    }
    net.run();

    let snap = net.metrics_snapshot();
    assert_eq!(
        snap.sum_where("dip_packets_total", &[("node", "0")]),
        corpus.len() as u64,
        "the router accounts every mangled control packet exactly once"
    );
    assert!(
        snap.sum_where("dip_drops_total", &[("node", "0"), ("reason", "malformed_field")]) > 0,
        "mangled control payloads are counted drops"
    );
    // The network-wide identity holds even under adversarial control input.
    assert_eq!(
        snap.get("dip_packets_total"),
        snap.get("dip_node_sent_total") - snap.get("dip_link_dropped_total"),
        "accounting identity"
    );
}

#[test]
fn dataplane_survives_and_accounts_for_mangled_packets() {
    let config = DataplaneConfig {
        workers: 2,
        batch_size: 8,
        ring_capacity: 256,
        backpressure: Backpressure::Block,
        ..Default::default()
    };
    let mut dp = Dataplane::start(config, |i| loaded_router(i as u64));
    let corpus = mangled_corpus();
    for pkt in &corpus {
        assert!(dp.submit(pkt.clone(), 0, 0).is_some());
    }
    let report = dp.shutdown();
    let snap = report.registry.snapshot();
    let forwarded = snap.sum_where("dip_packets_total", &[("outcome", "forwarded")]);
    let consumed = snap.sum_where("dip_packets_total", &[("outcome", "consumed")]);
    let drops = snap.get("dip_drops_total");
    assert_eq!(
        forwarded + consumed + drops,
        corpus.len() as u64,
        "accounting identity must survive adversarial input"
    );
    // Garbage must actually be dropping, not sneaking through as valid.
    assert!(
        snap.sum_where("dip_drops_total", &[("reason", "malformed_field")]) > 0,
        "corpus contains malformed packets; some must be counted as such"
    );
}

#[test]
fn open_loop_overload_at_twice_mst_keeps_the_accounting_identity() {
    use dip::workload::{find_mst, run_open_loop, MstConfig, OpenLoopConfig, WorkloadSpec};

    // Overload is an adversarial input to the accounting: every offered
    // packet must still land in exactly one of forwarded / consumed /
    // dropped, with injection-side queue-full drops carried by the
    // counted reason rather than vanishing before a worker ring is
    // chosen.
    let spec = WorkloadSpec { seed: 21, table_size: 300, catalog_size: 64, ..Default::default() };
    let cfg = MstConfig {
        packets_per_trial: 512,
        open_loop: OpenLoopConfig { queue_capacity: 64, ..Default::default() },
        max_iters: 10,
        ..Default::default()
    };
    let mst = find_mst(&spec, &cfg);
    assert!(mst.mst_pps > 0, "the search must find a sustainable rate");

    let overload = run_open_loop(&spec, mst.mst_pps * 2, 512, &cfg.open_loop);
    assert!(
        overload.identity_holds,
        "forwarded {} + consumed {} + dropped {} != injected {} at 2x MST",
        overload.forwarded, overload.consumed, overload.dropped, overload.injected
    );
    assert!(
        overload.queue_full > 0,
        "double the sustainable rate must overflow the modeled queue: {overload:?}"
    );
}

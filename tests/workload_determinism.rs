//! Workload determinism: one seed pins everything.
//!
//! The MST search is only meaningful if a trial can be replayed exactly —
//! same seed ⇒ byte-identical trace (pinned by hash), identical outcome
//! counters, identical latency quantiles — for every protocol mix. The
//! Zipf sanity check guards the other failure mode: a generator that
//! silently degrades to uniform popularity would still be deterministic,
//! so determinism alone can't catch it.

use dip::crypto::DetRng;
use dip::workload::{
    run_open_loop, ArrivalModel, Mix, OpenLoopConfig, TrafficClass, WorkloadSpec, Zipf,
};

fn spec_for(mix: Mix, seed: u64) -> WorkloadSpec {
    WorkloadSpec { seed, mix, table_size: 300, catalog_size: 64, ..Default::default() }
}

#[test]
fn same_seed_same_trace_and_counters_for_every_mix() {
    let mut mixes: Vec<Mix> = TrafficClass::ALL.iter().map(|c| Mix::single(*c)).collect();
    mixes.push(Mix::all());
    for mix in mixes {
        let label = mix.label();
        let spec = spec_for(mix, 99);
        let cfg = OpenLoopConfig::default();
        let a = run_open_loop(&spec, 500_000, 300, &cfg);
        let b = run_open_loop(&spec, 500_000, 300, &cfg);
        assert_eq!(a.trace_hash, b.trace_hash, "trace bytes for {label}");
        assert_eq!(a.content_hash, b.content_hash, "content for {label}");
        assert_eq!(
            (a.forwarded, a.consumed, a.dropped, a.queue_full),
            (b.forwarded, b.consumed, b.dropped, b.queue_full),
            "outcome counters for {label}"
        );
        assert_eq!((a.p50_ns, a.p99_ns), (b.p50_ns, b.p99_ns), "latency quantiles for {label}");
        assert!(a.identity_holds, "identity for {label}: {a:?}");
    }
}

#[test]
fn different_seeds_give_different_traces() {
    let a = spec_for(Mix::all(), 1).generate(500_000, 200);
    let b = spec_for(Mix::all(), 2).generate(500_000, 200);
    assert_ne!(a.hash(), b.hash(), "seeds must matter");
}

#[test]
fn arrival_models_are_deterministic_too() {
    for arrival in [
        ArrivalModel::Uniform,
        ArrivalModel::Poisson,
        ArrivalModel::OnOff { mean_on_ns: 100_000, mean_off_ns: 300_000 },
    ] {
        let spec = WorkloadSpec { arrival, ..spec_for(Mix::single(TrafficClass::Ipv4), 5) };
        assert_eq!(
            spec.generate(1_000_000, 200).hash(),
            spec.generate(1_000_000, 200).hash(),
            "{arrival:?}"
        );
    }
}

#[test]
fn ndn_interest_popularity_tracks_zipf_theory() {
    // Count how often the most popular catalog name appears in a pure-NDN
    // trace by matching the interest header bytes (headers are
    // payload-independent, so every request for a name shares them).
    let spec = WorkloadSpec {
        seed: 13,
        mix: Mix::single(TrafficClass::Ndn),
        catalog_size: 64,
        table_size: 300,
        ..Default::default()
    };
    let n = 4_000;
    let trace = spec.generate(1_000_000, n);
    let top_header = dip::protocols::ndn::interest(&dip::wire::ndn::Name::parse("/wl/cat/0"), 64)
        .to_bytes(&[])
        .unwrap();
    let hits = trace.packets.iter().filter(|p| p.bytes.starts_with(&top_header)).count() as f64;
    let empirical = hits / n as f64;
    let theory = Zipf::new(spec.catalog_size, spec.zipf_s).theoretical_top1();
    let uniform = 1.0 / spec.catalog_size as f64;
    assert!(
        (empirical - theory).abs() < 0.05,
        "top-1 frequency {empirical:.3} must be within 0.05 of theory {theory:.3}"
    );
    assert!(
        empirical > 3.0 * uniform,
        "top-1 frequency {empirical:.3} must far exceed uniform {uniform:.3}"
    );
}

#[test]
fn zipf_model_matches_theory_directly() {
    let zipf = Zipf::new(512, 1.1);
    let mut rng = DetRng::seed_from_u64(17);
    let n = 20_000;
    let top1 = (0..n).filter(|_| zipf.sample(&mut rng) == 0).count() as f64 / n as f64;
    let theory = zipf.theoretical_top1();
    assert!((top1 - theory).abs() < 0.02, "direct Zipf top-1 {top1:.4} vs theory {theory:.4}");
}
